package encoding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZigZagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := UnZigZag(ZigZag(v)); got != v {
			t.Errorf("UnZigZag(ZigZag(%d)) = %d", v, got)
		}
	}
}

func TestZigZagSmallMapping(t *testing.T) {
	tests := []struct {
		in   int64
		want uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}}
	for _, tc := range tests {
		if got := ZigZag(tc.in); got != tc.want {
			t.Errorf("ZigZag(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	prop := func(v int64) bool {
		buf := PutVarint(nil, v)
		got, n, err := Varint(buf)
		return err == nil && n == len(buf) && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	prop := func(v uint64) bool {
		buf := PutUvarint(nil, v)
		got, n, err := Uvarint(buf)
		return err == nil && n == len(buf) && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintShortBuffer(t *testing.T) {
	if _, _, err := Uvarint(nil); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
	// A continuation byte with no following data.
	if _, _, err := Uvarint([]byte{0x80}); err != ErrShortBuffer {
		t.Errorf("truncated varint: want ErrShortBuffer, got %v", err)
	}
}

func TestUvarintOverflow(t *testing.T) {
	malformed := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := Uvarint(malformed); err != ErrOverflow {
		t.Errorf("want ErrOverflow, got %v", err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	prop := func(v float64) bool {
		buf := PutFloat64(nil, v)
		got, n, err := Float64(buf)
		if err != nil || n != 8 {
			return false
		}
		return math.Float64bits(got) == math.Float64bits(v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Short(t *testing.T) {
	if _, _, err := Float64(make([]byte, 7)); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
}

func TestUint32Uint64RoundTrip(t *testing.T) {
	b := PutUint32(nil, 0xdeadbeef)
	v32, n, err := Uint32(b)
	if err != nil || n != 4 || v32 != 0xdeadbeef {
		t.Errorf("uint32 round trip: %v %v %v", v32, n, err)
	}
	b = PutUint64(nil, 0xfeedfacecafebeef)
	v64, n, err := Uint64(b)
	if err != nil || n != 8 || v64 != 0xfeedfacecafebeef {
		t.Errorf("uint64 round trip: %v %v %v", v64, n, err)
	}
	if _, _, err := Uint32(make([]byte, 3)); err != ErrShortBuffer {
		t.Error("uint32 short buffer not detected")
	}
	if _, _, err := Uint64(make([]byte, 7)); err != ErrShortBuffer {
		t.Error("uint64 short buffer not detected")
	}
}

func TestDeltasRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{42},
		{1, 2, 3, 4, 5},
		{100, 50, 200, 50},
		{math.MinInt64 / 2, 0, math.MaxInt64 / 2},
	}
	for _, vals := range cases {
		buf := EncodeDeltas(nil, vals)
		got, n, err := DecodeDeltas(buf, len(vals))
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d bytes", vals, n, len(buf))
		}
		if len(got) != len(vals) {
			t.Fatalf("decode %v: got %v", vals, got)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("decode %v: got %v", vals, got)
				break
			}
		}
	}
}

func TestDeltasRegularSeriesCompress(t *testing.T) {
	// A perfectly regular timestamp series (big base, constant small delta)
	// must encode to ~1 byte per point after the first.
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = 1_600_000_000_000 + int64(i)*50
	}
	buf := EncodeDeltas(nil, vals)
	if len(buf) > 10+1100 {
		t.Errorf("regular series encoded to %d bytes, want ~1010", len(buf))
	}
}

func TestDeltasPropertyRoundTrip(t *testing.T) {
	prop := func(vals []int64) bool {
		// Constrain to avoid delta overflow (the codec contract assumes
		// deltas fit in int64, true for timestamps).
		for i := range vals {
			vals[i] %= 1 << 40
		}
		buf := EncodeDeltas(nil, vals)
		got, _, err := DecodeDeltas(buf, len(vals))
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return len(vals) == 0
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeDeltasShort(t *testing.T) {
	buf := EncodeDeltas(nil, []int64{1, 2, 3})
	if _, _, err := DecodeDeltas(buf[:1], 3); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
	if _, _, err := DecodeDeltas(nil, 1); err != ErrShortBuffer {
		t.Errorf("empty input: want ErrShortBuffer, got %v", err)
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Inf(1), math.MaxFloat64}
	buf := EncodeFloats(nil, vals)
	got, n, err := DecodeFloats(buf, len(vals))
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, n=%d", err, n)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("floats[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	if _, _, err := DecodeFloats(buf, len(vals)+1); err != ErrShortBuffer {
		t.Error("over-read not detected")
	}
}
