package encoding

import "encoding/binary"

// BitWriter appends individual bits / bit fields to a byte buffer,
// most-significant bit first. It backs the Gorilla float codec.
//
// Bits accumulate in a 64-bit register and spill to the byte buffer eight
// bytes at a time, so the per-value cost of the Gorilla inner loop is a
// couple of shifts and one bounds-checked append instead of a per-bit (or
// per-byte) loop. The wire format is unchanged: MSB-first, zero-padded to
// a byte boundary by Bytes.
type BitWriter struct {
	buf []byte
	acc uint64 // pending bits, left-aligned (bit 63 is the next to spill)
	n   uint   // number of valid bits in acc, 0..63
}

// NewBitWriter returns a writer appending to dst (which may be nil). dst
// must end on a byte boundary (the writer starts a fresh byte).
func NewBitWriter(dst []byte) *BitWriter {
	return &BitWriter{buf: dst}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(bit bool) {
	var v uint64
	if bit {
		v = 1
	}
	w.WriteBits(v, 1)
}

// WriteBits appends the low `count` bits of v, most significant first.
// count must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, count uint8) {
	c := uint(count)
	if c == 0 {
		return
	}
	if c < 64 {
		v &= 1<<c - 1
	}
	if w.n+c < 64 {
		w.acc |= v << (64 - w.n - c)
		w.n += c
		return
	}
	// The accumulator fills: spill 64 bits, keep the remainder.
	spill := w.acc | v>>(w.n+c-64)
	w.buf = binary.BigEndian.AppendUint64(w.buf, spill)
	rem := w.n + c - 64 // 0..63 bits of v still pending
	w.n = rem
	if rem == 0 {
		w.acc = 0
	} else {
		w.acc = v << (64 - rem)
	}
}

// Bytes flushes any pending bits (zero-padding the final partial byte) and
// returns the accumulated buffer. The writer remains usable, but further
// writes start on the next byte boundary — callers emit one logical stream
// and call Bytes once at the end.
func (w *BitWriter) Bytes() []byte {
	for used := (w.n + 7) / 8; used > 0; used-- {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc <<= 8
	}
	w.n = 0
	w.acc = 0
	return w.buf
}

// BitReader consumes bits from a byte buffer, most-significant bit first.
//
// Reads are word-at-a-time: when at least eight bytes remain, a ReadBits
// is one big-endian load plus shifts (two loads when the field straddles a
// word boundary); the byte-wise loop only runs within the final seven
// bytes of the buffer.
type BitReader struct {
	buf []byte
	bit int // absolute bit position consumed so far
}

// NewBitReader returns a reader over src.
func NewBitReader(src []byte) *BitReader {
	return &BitReader{buf: src}
}

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (bool, error) {
	if r.bit >= 8*len(r.buf) {
		return false, ErrShortBuffer
	}
	b := r.buf[r.bit>>3]&(1<<(7-uint(r.bit&7))) != 0
	r.bit++
	return b, nil
}

// ReadBits consumes `count` bits and returns them in the low bits of the
// result, preserving order. count must be in [0, 64].
func (r *BitReader) ReadBits(count uint8) (uint64, error) {
	c := int(count)
	if c == 0 {
		return 0, nil
	}
	if r.bit+c > 8*len(r.buf) {
		return 0, ErrShortBuffer
	}
	idx := r.bit >> 3
	off := uint(r.bit & 7)
	r.bit += c
	if idx+8 <= len(r.buf) {
		w := binary.BigEndian.Uint64(r.buf[idx:])
		if uint(c)+off <= 64 {
			// The whole field sits inside one loaded word.
			return (w << off) >> (64 - uint(c)), nil
		}
		// Straddles the word: take the 64-off bits left in w, then the
		// remainder from the following byte (which the bounds check above
		// guarantees exists).
		rem := uint(c) + off - 64 // 1..7
		hi := (w << off) >> off   // low 64-off bits = stream bits [off, 64)
		return hi<<rem | uint64(r.buf[idx+8]>>(8-rem)), nil
	}
	// Tail of the buffer: assemble byte-wise.
	var v uint64
	for c > 0 {
		avail := 8 - off
		take := uint(c)
		if take > avail {
			take = avail
		}
		chunk := (r.buf[idx] >> (avail - take)) & (1<<take - 1)
		v = v<<take | uint64(chunk)
		off += take
		if off == 8 {
			off = 0
			idx++
		}
		c -= int(take)
	}
	return v, nil
}

// Offset returns the number of whole bytes consumed (rounding up when
// mid-byte).
func (r *BitReader) Offset() int {
	return (r.bit + 7) / 8
}
