package encoding

// BitWriter appends individual bits / bit fields to a byte buffer,
// most-significant bit first. It backs the Gorilla float codec.
type BitWriter struct {
	buf  []byte
	free uint8 // free bits in the last byte (0 when buf is empty or full)
}

// NewBitWriter returns a writer appending to dst (which may be nil).
func NewBitWriter(dst []byte) *BitWriter {
	return &BitWriter{buf: dst}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(bit bool) {
	if w.free == 0 {
		w.buf = append(w.buf, 0)
		w.free = 8
	}
	if bit {
		w.buf[len(w.buf)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

// WriteBits appends the low `count` bits of v, most significant first.
// count must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, count uint8) {
	for count > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := count
		if take > w.free {
			take = w.free
		}
		shift := count - take
		chunk := byte(v>>shift) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= chunk << (w.free - take)
		w.free -= take
		count -= take
	}
}

// Bytes returns the accumulated buffer. Trailing unused bits are zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes bits from a byte buffer, most-significant bit first.
type BitReader struct {
	buf []byte
	pos int   // byte index
	bit uint8 // bits already consumed from buf[pos]
}

// NewBitReader returns a reader over src.
func NewBitReader(src []byte) *BitReader {
	return &BitReader{buf: src}
}

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (bool, error) {
	if r.pos >= len(r.buf) {
		return false, ErrShortBuffer
	}
	b := r.buf[r.pos]&(1<<(7-r.bit)) != 0
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits consumes `count` bits and returns them in the low bits of the
// result, preserving order. count must be in [0, 64].
func (r *BitReader) ReadBits(count uint8) (uint64, error) {
	var v uint64
	for count > 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrShortBuffer
		}
		avail := 8 - r.bit
		take := count
		if take > avail {
			take = avail
		}
		chunk := (r.buf[r.pos] >> (avail - take)) & (1<<take - 1)
		v = v<<take | uint64(chunk)
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		count -= take
	}
	return v, nil
}

// Offset returns the number of whole bytes consumed (rounding up when
// mid-byte).
func (r *BitReader) Offset() int {
	if r.bit == 0 {
		return r.pos
	}
	return r.pos + 1
}
