package encoding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter(nil)
	w.WriteBit(true)
	w.WriteBit(false)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEADBEEFCAFE, 48)
	w.WriteBits(0, 3)
	w.WriteBit(true)

	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); !b {
		t.Fatal("bit 0")
	}
	if b, _ := r.ReadBit(); b {
		t.Fatal("bit 1")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(48); v != 0xDEADBEEFCAFE {
		t.Fatalf("48 bits = %x", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Fatalf("zeros = %b", v)
	}
	if b, _ := r.ReadBit(); !b {
		t.Fatal("final bit")
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
	r = NewBitReader(nil)
	if _, err := r.ReadBits(1); err != ErrShortBuffer {
		t.Errorf("empty reader: %v", err)
	}
}

func TestBitStreamPropertyRoundTrip(t *testing.T) {
	prop := func(vals []uint16, widthsRaw []uint8) bool {
		if len(vals) > len(widthsRaw) {
			vals = vals[:len(widthsRaw)]
		}
		w := NewBitWriter(nil)
		widths := make([]uint8, len(vals))
		for i, v := range vals {
			widths[i] = widthsRaw[i]%16 + 1 // 1..16 bits
			w.WriteBits(uint64(v)&(1<<widths[i]-1), widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i, v := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != uint64(v)&(1<<widths[i]-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func gorillaRoundTrip(t *testing.T, vals []float64) {
	t.Helper()
	buf := EncodeGorilla(nil, vals)
	got, n, err := DecodeGorilla(buf, len(vals))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestGorillaRoundTripBasic(t *testing.T) {
	gorillaRoundTrip(t, []float64{1.0})
	gorillaRoundTrip(t, []float64{1.0, 1.0, 1.0, 1.0})
	gorillaRoundTrip(t, []float64{12.5, 12.5, 13.0, 12.0, 24.75, -3})
	gorillaRoundTrip(t, []float64{0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64})
}

func TestGorillaEmpty(t *testing.T) {
	if buf := EncodeGorilla(nil, nil); len(buf) != 0 {
		t.Errorf("empty encode: %d bytes", len(buf))
	}
	got, n, err := DecodeGorilla(nil, 0)
	if err != nil || n != 0 || got != nil {
		t.Errorf("empty decode: %v %d %v", got, n, err)
	}
}

func TestGorillaNaN(t *testing.T) {
	vals := []float64{1.5, math.NaN(), 2.5}
	buf := EncodeGorilla(nil, vals)
	got, _, err := DecodeGorilla(buf, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[1]) || got[0] != 1.5 || got[2] != 2.5 {
		t.Errorf("NaN round trip: %v", got)
	}
}

func TestGorillaCompressionOnSensorData(t *testing.T) {
	// Slowly varying sensor values: Gorilla should beat 8 bytes/value
	// substantially.
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 10000)
	v := 20.0
	for i := range vals {
		v += rng.NormFloat64() * 0.05
		vals[i] = math.Round(v*4) / 4 // ADC-style 0.25 quantization
	}
	buf := EncodeGorilla(nil, vals)
	if len(buf) >= 8*len(vals)/2 {
		t.Errorf("gorilla: %d bytes for %d values, want >2x compression", len(buf), len(vals))
	}
}

func TestGorillaConstantSeriesTiny(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 42.5
	}
	buf := EncodeGorilla(nil, vals)
	// 8 bytes + ~999 bits ≈ 133 bytes.
	if len(buf) > 140 {
		t.Errorf("constant series: %d bytes", len(buf))
	}
}

func TestGorillaTruncated(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	buf := EncodeGorilla(nil, vals)
	for cut := 0; cut < 8 && cut < len(buf); cut++ {
		if _, _, err := DecodeGorilla(buf[:cut], len(vals)); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestGorillaPropertyRoundTrip(t *testing.T) {
	prop := func(raw []float64) bool {
		buf := EncodeGorilla(nil, raw)
		got, _, err := DecodeGorilla(buf, len(raw))
		if err != nil {
			return false
		}
		for i := range raw {
			if math.Float64bits(got[i]) != math.Float64bits(raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGorillaEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	v := 100.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = EncodeGorilla(buf[:0], vals)
	}
}

func BenchmarkGorillaDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	v := 100.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	buf := EncodeGorilla(nil, vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeGorilla(buf, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}
