package encoding

import (
	"math"
	"math/bits"
)

// Gorilla XOR compression for float64 sequences (Pelkonen et al., "Gorilla:
// a fast, scalable, in-memory time series database", VLDB 2015), the value
// codec used by most time-series storage engines including IoTDB's TsFile.
//
// Per value: XOR with the previous value. A zero XOR emits a single 0 bit.
// Otherwise emit 1, then either 0 + meaningful bits (when they fit inside
// the previous value's leading/trailing-zero window) or 1 + 5-bit
// leading-zero count + 6-bit significant-bit length + the bits themselves.

const (
	gorillaLeadingBits = 5
	gorillaLengthBits  = 6
	// maxLeading caps the storable leading-zero count (5 bits -> 31).
	maxLeading = 31
)

// EncodeGorilla appends the Gorilla encoding of vals to dst. The count is
// NOT encoded; callers (the SSTable block format) frame it externally.
func EncodeGorilla(dst []byte, vals []float64) []byte {
	if len(vals) == 0 {
		return dst
	}
	// A value writer keeps the accumulator state on the stack; the hot
	// loop never allocates.
	w := BitWriter{buf: dst}
	prev := math.Float64bits(vals[0])
	w.WriteBits(prev, 64)
	prevLeading, prevTrailing := uint8(65), uint8(65) // 65: no window yet
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.WriteBit(false)
			continue
		}
		w.WriteBit(true)
		leading := uint8(bits.LeadingZeros64(x))
		if leading > maxLeading {
			leading = maxLeading
		}
		trailing := uint8(bits.TrailingZeros64(x))
		if prevLeading <= 64 && leading >= prevLeading && trailing >= prevTrailing {
			// Fits the previous window: 0 + meaningful bits.
			w.WriteBit(false)
			sig := 64 - prevLeading - prevTrailing
			w.WriteBits(x>>prevTrailing, sig)
			continue
		}
		// New window: 1 + leading(5) + length(6) + bits.
		w.WriteBit(true)
		sig := 64 - leading - trailing
		w.WriteBits(uint64(leading), gorillaLeadingBits)
		// sig is in [1, 64]; store sig-1 in 6 bits.
		w.WriteBits(uint64(sig-1), gorillaLengthBits)
		w.WriteBits(x>>trailing, sig)
		prevLeading, prevTrailing = leading, trailing
	}
	return w.Bytes()
}

// DecodeGorilla decodes count Gorilla-encoded float64 values from src,
// returning the values and the number of bytes consumed.
func DecodeGorilla(src []byte, count int) ([]float64, int, error) {
	if count == 0 {
		return nil, 0, nil
	}
	// After the 8-byte first value, each value takes at least one bit, so
	// a count beyond 8*len(src) can never decode; rejecting it first
	// bounds the allocation below.
	if count > 8*len(src) {
		return nil, 0, ErrShortBuffer
	}
	vals := make([]float64, count)
	n, err := DecodeGorillaBuf(vals, src)
	if err != nil {
		return nil, 0, err
	}
	return vals, n, nil
}

// DecodeGorillaBuf decodes len(vals) Gorilla-encoded float64 values from
// src into vals, returning the number of bytes consumed. It is the
// allocation-free core of DecodeGorilla: callers on the block-decode hot
// path pass pooled scratch instead of taking a fresh slice per block.
func DecodeGorillaBuf(vals []float64, src []byte) (int, error) {
	count := len(vals)
	if count == 0 {
		return 0, nil
	}
	if count > 8*len(src) {
		return 0, ErrShortBuffer
	}
	// A value reader keeps the cursor on the stack; the hot loop never
	// allocates.
	r := BitReader{buf: src}
	first, err := r.ReadBits(64)
	if err != nil {
		return 0, err
	}
	prev := first
	vals[0] = math.Float64frombits(prev)
	var leading, trailing uint8
	haveWindow := false
	for i := 1; i < count; i++ {
		changed, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if !changed {
			vals[i] = math.Float64frombits(prev)
			continue
		}
		newWindow, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if newWindow {
			l, err := r.ReadBits(gorillaLeadingBits)
			if err != nil {
				return 0, err
			}
			s, err := r.ReadBits(gorillaLengthBits)
			if err != nil {
				return 0, err
			}
			leading = uint8(l)
			sig := uint8(s) + 1
			if leading+sig > 64 {
				return 0, ErrOverflow
			}
			trailing = 64 - leading - sig
			haveWindow = true
		} else if !haveWindow {
			return 0, ErrShortBuffer
		}
		sig := 64 - leading - trailing
		xbits, err := r.ReadBits(sig)
		if err != nil {
			return 0, err
		}
		prev ^= xbits << trailing
		vals[i] = math.Float64frombits(prev)
	}
	return r.Offset(), nil
}
