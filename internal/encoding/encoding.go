// Package encoding implements the byte-level codecs used by the SSTable
// block format and the write-ahead log: unsigned varints, zigzag-encoded
// signed varints, delta-encoded monotone timestamp sequences, and raw
// IEEE-754 values.
//
// Time-series blocks store generation timestamps sorted ascending, so
// delta-of-delta-free simple deltas compress well: regular series collapse
// to one-byte deltas.
package encoding

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortBuffer is returned when a decode runs out of input bytes.
var ErrShortBuffer = errors.New("encoding: short buffer")

// ErrOverflow is returned when a varint is malformed or exceeds 64 bits.
var ErrOverflow = errors.New("encoding: varint overflows 64 bits")

// PutUvarint appends v to dst as an unsigned varint and returns the
// extended slice.
func PutUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes an unsigned varint from src, returning the value and the
// number of bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n == 0 {
		return 0, 0, ErrShortBuffer
	}
	if n < 0 {
		return 0, 0, ErrOverflow
	}
	return v, n, nil
}

// ZigZag maps a signed integer to an unsigned one with small absolute
// values mapping to small results: 0→0, −1→1, 1→2, −2→3, …
func ZigZag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// PutVarint appends a zigzag-encoded signed varint to dst.
func PutVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, ZigZag(v))
}

// Varint decodes a zigzag-encoded signed varint from src.
func Varint(src []byte) (int64, int, error) {
	u, n, err := Uvarint(src)
	if err != nil {
		return 0, 0, err
	}
	return UnZigZag(u), n, nil
}

// PutFloat64 appends the 8-byte little-endian IEEE-754 representation of v.
func PutFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// Float64 decodes an 8-byte little-endian float64 from src.
func Float64(src []byte) (float64, int, error) {
	if len(src) < 8 {
		return 0, 0, ErrShortBuffer
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), 8, nil
}

// PutUint32 appends v little-endian.
func PutUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// Uint32 decodes a 4-byte little-endian uint32.
func Uint32(src []byte) (uint32, int, error) {
	if len(src) < 4 {
		return 0, 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint32(src), 4, nil
}

// PutUint64 appends v little-endian.
func PutUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint64 decodes an 8-byte little-endian uint64.
func Uint64(src []byte) (uint64, int, error) {
	if len(src) < 8 {
		return 0, 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(src), 8, nil
}

// EncodeDeltas appends the delta encoding of the int64 sequence vals to
// dst: the first value as a signed varint, then successive differences as
// signed varints. An empty sequence encodes to nothing beyond the caller's
// own length prefix.
func EncodeDeltas(dst []byte, vals []int64) []byte {
	if len(vals) == 0 {
		return dst
	}
	dst = PutVarint(dst, vals[0])
	for i := 1; i < len(vals); i++ {
		dst = PutVarint(dst, vals[i]-vals[i-1])
	}
	return dst
}

// DecodeDeltas decodes count delta-encoded int64 values from src, returning
// the values and bytes consumed.
func DecodeDeltas(src []byte, count int) ([]int64, int, error) {
	if count == 0 {
		return nil, 0, nil
	}
	// Each value takes at least one byte, so a count beyond len(src) can
	// never decode; rejecting it first bounds the allocation below.
	if count > len(src) {
		return nil, 0, ErrShortBuffer
	}
	vals := make([]int64, count)
	off, err := DecodeDeltasBuf(vals, src)
	if err != nil {
		return nil, 0, err
	}
	return vals, off, nil
}

// DecodeDeltasBuf decodes len(vals) delta-encoded int64 values from src
// into vals, returning the bytes consumed. It is the allocation-free core
// of DecodeDeltas: block decoding passes pooled scratch slices.
func DecodeDeltasBuf(vals []int64, src []byte) (int, error) {
	count := len(vals)
	if count == 0 {
		return 0, nil
	}
	if count > len(src) {
		return 0, ErrShortBuffer
	}
	off := 0
	v, n, err := Varint(src)
	if err != nil {
		return 0, err
	}
	off += n
	vals[0] = v
	prev := v
	for i := 1; i < count; i++ {
		// Inline one-byte fast path: regular series collapse to one-byte
		// deltas, so most iterations take this branch without the call.
		var d int64
		if off < len(src) && src[off] < 0x80 {
			b := src[off]
			d = UnZigZag(uint64(b))
			off++
		} else {
			var n int
			d, n, err = Varint(src[off:])
			if err != nil {
				return 0, err
			}
			off += n
		}
		prev += d
		vals[i] = prev
	}
	return off, nil
}

// EncodeFloats appends count raw float64 values.
func EncodeFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = PutFloat64(dst, v)
	}
	return dst
}

// DecodeFloats decodes count float64 values from src.
func DecodeFloats(src []byte, count int) ([]float64, int, error) {
	if len(src) < 8*count {
		return nil, 0, ErrShortBuffer
	}
	vals := make([]float64, count)
	n, err := DecodeFloatsBuf(vals, src)
	return vals, n, err
}

// DecodeFloatsBuf decodes len(vals) raw float64 values from src into vals,
// returning the bytes consumed — the allocation-free core of DecodeFloats.
func DecodeFloatsBuf(vals []float64, src []byte) (int, error) {
	if len(src) < 8*len(vals) {
		return 0, ErrShortBuffer
	}
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return 8 * len(vals), nil
}
