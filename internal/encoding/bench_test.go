package encoding

import (
	"math/rand"
	"testing"
)

// benchValues returns a Gorilla-friendly smooth random walk: the value
// shape real sensors produce, so compressed sizes and branch behavior
// match production decode paths.
func benchValues(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, n)
	v := 100.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	return vals
}

// benchDeltas returns regular timestamps with occasional wider gaps — the
// mostly-one-byte-delta stream the DecodeDeltasBuf fast path targets.
func benchDeltas(n int) []int64 {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, n)
	tg := int64(0)
	for i := range vals {
		tg += 50
		if rng.Intn(16) == 0 {
			tg += rng.Int63n(100_000)
		}
		vals[i] = tg
	}
	return vals
}

// The alloc-regression tests below pin the hot codec paths at their
// current allocation counts. A failure means a refactor re-introduced a
// heap escape (e.g. a BitWriter moved back to the heap, or a decode
// dropped its caller-supplied buffer) — fix the escape, don't raise the
// bound.

func TestEncodeGorillaAllocRegression(t *testing.T) {
	vals := benchValues(512)
	dst := EncodeGorilla(nil, vals) // warmup sizes the buffer
	allocs := testing.AllocsPerRun(100, func() {
		dst = EncodeGorilla(dst[:0], vals)
	})
	if allocs > 0 {
		t.Fatalf("EncodeGorilla into pre-sized dst: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodeGorillaBufAllocRegression(t *testing.T) {
	vals := benchValues(512)
	src := EncodeGorilla(nil, vals)
	out := make([]float64, len(vals))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeGorillaBuf(out, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DecodeGorillaBuf: %.1f allocs/op, want 0", allocs)
	}
}

func TestDeltaCodecAllocRegression(t *testing.T) {
	vals := benchDeltas(512)
	dst := EncodeDeltas(nil, vals) // warmup sizes the buffer
	allocs := testing.AllocsPerRun(100, func() {
		dst = EncodeDeltas(dst[:0], vals)
	})
	if allocs > 0 {
		t.Fatalf("EncodeDeltas into pre-sized dst: %.1f allocs/op, want 0", allocs)
	}

	out := make([]int64, len(vals))
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := DecodeDeltasBuf(out, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DecodeDeltasBuf: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodeFloatsBufAllocRegression(t *testing.T) {
	vals := benchValues(512)
	src := EncodeFloats(nil, vals)
	out := make([]float64, len(vals))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeFloatsBuf(out, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("DecodeFloatsBuf: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkEncodeGorilla(b *testing.B) {
	vals := benchValues(512)
	dst := make([]byte, 0, 8*len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeGorilla(dst[:0], vals)
	}
	b.SetBytes(int64(8 * len(vals)))
}

func BenchmarkDecodeGorilla(b *testing.B) {
	vals := benchValues(512)
	src := EncodeGorilla(nil, vals)
	out := make([]float64, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeGorillaBuf(out, src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * len(vals)))
}

func BenchmarkEncodeDeltas(b *testing.B) {
	vals := benchDeltas(512)
	dst := make([]byte, 0, 10*len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeDeltas(dst[:0], vals)
	}
	b.SetBytes(int64(8 * len(vals)))
}

func BenchmarkDecodeDeltas(b *testing.B) {
	vals := benchDeltas(512)
	src := EncodeDeltas(nil, vals)
	out := make([]int64, len(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDeltasBuf(out, src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * len(vals)))
}
