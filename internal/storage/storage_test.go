package storage

import (
	"errors"
	"sync"
	"testing"
)

// backendsUnderTest returns a fresh instance of every Backend
// implementation for conformance testing.
func backendsUnderTest(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatalf("NewDiskBackend: %v", err)
	}
	return map[string]Backend{
		"mem":  NewMemBackend(),
		"disk": disk,
	}
}

func TestBackendWriteReadRoundTrip(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Write("a.sst", []byte("hello")); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := b.Read("a.sst")
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if string(got) != "hello" {
				t.Errorf("Read = %q", got)
			}
			sz, err := b.Size("a.sst")
			if err != nil || sz != 5 {
				t.Errorf("Size = %d, %v", sz, err)
			}
		})
	}
}

func TestBackendReadMissing(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Read("missing"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Read missing: %v, want ErrNotFound", err)
			}
			if _, err := b.Size("missing"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Size missing: %v, want ErrNotFound", err)
			}
		})
	}
}

func TestBackendOverwrite(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			b.Write("x", []byte("one"))
			b.Write("x", []byte("two!"))
			got, _ := b.Read("x")
			if string(got) != "two!" {
				t.Errorf("after overwrite: %q", got)
			}
		})
	}
}

func TestBackendAppend(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Append("log", []byte("aa")); err != nil {
				t.Fatalf("Append create: %v", err)
			}
			if err := b.Append("log", []byte("bb")); err != nil {
				t.Fatalf("Append extend: %v", err)
			}
			got, _ := b.Read("log")
			if string(got) != "aabb" {
				t.Errorf("appended = %q", got)
			}
		})
	}
}

func TestBackendRemove(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			b.Write("gone", []byte("x"))
			if err := b.Remove("gone"); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := b.Read("gone"); !errors.Is(err, ErrNotFound) {
				t.Error("object still present after Remove")
			}
			if err := b.Remove("gone"); err != nil {
				t.Errorf("Remove of missing object should be nil, got %v", err)
			}
		})
	}
}

func TestBackendList(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			b.Write("c", nil)
			b.Write("a", nil)
			b.Write("b", nil)
			names, err := b.List()
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
				t.Errorf("List = %v", names)
			}
		})
	}
}

func TestMemBackendIsolation(t *testing.T) {
	b := NewMemBackend()
	data := []byte{1, 2, 3}
	b.Write("x", data)
	data[0] = 99 // mutating the caller's slice must not affect the store
	got, _ := b.Read("x")
	if got[0] != 1 {
		t.Error("backend aliases caller's write buffer")
	}
	got[1] = 99 // mutating a read result must not affect the store
	got2, _ := b.Read("x")
	if got2[1] != 2 {
		t.Error("backend aliases read buffers")
	}
}

func TestMemBackendAccounting(t *testing.T) {
	b := NewMemBackend()
	b.Write("x", make([]byte, 100))
	b.Append("x", make([]byte, 50))
	b.Read("x")
	if got := b.BytesWritten(); got != 150 {
		t.Errorf("BytesWritten = %d", got)
	}
	if got := b.BytesRead(); got != 150 {
		t.Errorf("BytesRead = %d", got)
	}
}

func TestMemBackendConcurrent(t *testing.T) {
	b := NewMemBackend()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				b.Write(name, []byte{byte(j)})
				b.Read(name)
				b.Append(name, []byte{1})
				b.List()
			}
		}(i)
	}
	wg.Wait()
}

func TestDiskBackendRejectsBadNames(t *testing.T) {
	d, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b"} {
		if err := d.Write(bad, nil); err == nil {
			t.Errorf("Write(%q) should fail", bad)
		}
		if _, err := d.Read(bad); err == nil {
			t.Errorf("Read(%q) should fail", bad)
		}
	}
}

func TestDiskBackendListSkipsTmp(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Write("real", []byte("x"))
	// Simulate a leftover temp file from a crashed write.
	if err := d.Append("leftover.tmp", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	names, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "real" {
		t.Errorf("List = %v, want [real]", names)
	}
}

func TestDiskBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, _ := NewDiskBackend(dir)
	d1.Write("keep", []byte("payload"))
	d2, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Read("keep")
	if err != nil || string(got) != "payload" {
		t.Errorf("reopened read: %q, %v", got, err)
	}
}

func TestPrefixBackendNamespacing(t *testing.T) {
	inner := NewMemBackend()
	a := NewPrefixBackend(inner, "seriesA")
	b := NewPrefixBackend(inner, "seriesB")
	a.Write("MANIFEST", []byte("ma"))
	b.Write("MANIFEST", []byte("mb"))
	got, err := a.Read("MANIFEST")
	if err != nil || string(got) != "ma" {
		t.Fatalf("a.Read: %q, %v", got, err)
	}
	got, _ = b.Read("MANIFEST")
	if string(got) != "mb" {
		t.Fatalf("b.Read: %q", got)
	}
	namesA, _ := a.List()
	if len(namesA) != 1 || namesA[0] != "MANIFEST" {
		t.Errorf("a.List = %v", namesA)
	}
	all, _ := inner.List()
	if len(all) != 2 || all[0] != "seriesA.MANIFEST" {
		t.Errorf("inner.List = %v", all)
	}
	if sz, err := a.Size("MANIFEST"); err != nil || sz != 2 {
		t.Errorf("a.Size: %d, %v", sz, err)
	}
	a.Append("log", []byte("x"))
	a.Append("log", []byte("y"))
	got, _ = a.Read("log")
	if string(got) != "xy" {
		t.Errorf("a append: %q", got)
	}
	if err := a.Remove("MANIFEST"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read("MANIFEST"); !errors.Is(err, ErrNotFound) {
		t.Error("a.MANIFEST still present")
	}
	if _, err := b.Read("MANIFEST"); err != nil {
		t.Error("b.MANIFEST vanished with a's remove")
	}
}

func TestPrefixBackendPanicsOnBadPrefix(t *testing.T) {
	for _, bad := range []string{"", "a/b", "a\\b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("prefix %q accepted", bad)
				}
			}()
			NewPrefixBackend(NewMemBackend(), bad)
		}()
	}
}
