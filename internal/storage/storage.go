// Package storage abstracts the byte store underneath SSTables and the
// write-ahead log. Two backends are provided: an in-memory map for
// simulation-scale experiments and tests, and a directory-backed store for
// durable operation. Both present whole-object semantics — SSTables are
// immutable once written, so the interface is create-whole/read-whole.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when the named object does not exist.
var ErrNotFound = errors.New("storage: object not found")

// Backend stores immutable named byte objects (SSTable images) and
// append-able logs (the WAL).
type Backend interface {
	// Write stores data under name, replacing any existing object.
	Write(name string, data []byte) error
	// Read returns the full contents of the named object.
	Read(name string) ([]byte, error)
	// Append appends data to the named object, creating it if absent.
	Append(name string, data []byte) error
	// Remove deletes the named object. Removing a missing object is not an
	// error.
	Remove(name string) error
	// List returns the names of all objects, sorted.
	List() ([]string, error)
	// Size returns the size in bytes of the named object.
	Size(name string) (int64, error)
}

// MemBackend is an in-memory Backend, safe for concurrent use.
type MemBackend struct {
	mu      sync.RWMutex
	objects map[string][]byte

	// byte accounting for write-amplification measurement at the storage
	// layer (optional cross-check of the point-level accounting).
	bytesWritten int64
	bytesRead    int64
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{objects: make(map[string][]byte)}
}

// Write implements Backend.
func (m *MemBackend) Write(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = cp
	m.bytesWritten += int64(len(data))
	return nil
}

// Read implements Backend.
func (m *MemBackend) Read(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	m.bytesRead += int64(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Append implements Backend.
func (m *MemBackend) Append(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = append(m.objects[name], data...)
	m.bytesWritten += int64(len(data))
	return nil
}

// Remove implements Backend.
func (m *MemBackend) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, name)
	return nil
}

// List implements Backend.
func (m *MemBackend) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.objects))
	for n := range m.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Size implements Backend.
func (m *MemBackend) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(data)), nil
}

// BytesWritten returns the cumulative bytes written through this backend.
func (m *MemBackend) BytesWritten() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytesWritten
}

// BytesRead returns the cumulative bytes read through this backend.
func (m *MemBackend) BytesRead() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytesRead
}

// DiskBackend stores each object as a file inside a directory. Object names
// must not contain path separators.
type DiskBackend struct {
	dir string
	mu  sync.Mutex
}

// NewDiskBackend creates (if needed) and opens a directory-backed store.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &DiskBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (d *DiskBackend) Dir() string { return d.dir }

func (d *DiskBackend) path(name string) (string, error) {
	if strings.ContainsAny(name, "/\\") || name == "" || name == "." || name == ".." {
		return "", fmt.Errorf("storage: invalid object name %q", name)
	}
	return filepath.Join(d.dir, name), nil
}

// Write implements Backend. The object is written to a temp file and
// renamed into place so readers never observe a torn write.
func (d *DiskBackend) Write(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: rename: %w", err)
	}
	return nil
}

// Read implements Backend.
func (d *DiskBackend) Read(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read: %w", err)
	}
	return data, nil
}

// Append implements Backend.
func (d *DiskBackend) Append(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open append: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	return f.Sync()
}

// Remove implements Backend.
func (d *DiskBackend) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Backend.
func (d *DiskBackend) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Size implements Backend.
func (d *DiskBackend) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
