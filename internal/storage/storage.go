// Package storage abstracts the byte store underneath SSTables and the
// write-ahead log. Two backends are provided: an in-memory map for
// simulation-scale experiments and tests, and a directory-backed store for
// durable operation. Both present whole-object semantics — SSTables are
// immutable once written, so the interface is create-whole/read-whole.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when the named object does not exist.
var ErrNotFound = errors.New("storage: object not found")

// Backend stores immutable named byte objects (SSTable images) and
// append-able logs (the WAL).
type Backend interface {
	// Write stores data under name, replacing any existing object.
	Write(name string, data []byte) error
	// Read returns the full contents of the named object.
	Read(name string) ([]byte, error)
	// Append appends data to the named object, creating it if absent.
	Append(name string, data []byte) error
	// Remove deletes the named object. Removing a missing object is not an
	// error.
	Remove(name string) error
	// List returns the names of all objects, sorted.
	List() ([]string, error)
	// Size returns the size in bytes of the named object.
	Size(name string) (int64, error)
	// OpenRange opens the named object for random-access reads. The
	// returned reader observes the object as it was at open time and stays
	// readable after the name is Removed or overwritten — the lazy SSTable
	// read path counts on this so that in-flight scans survive a
	// compaction retiring their tables underneath them.
	OpenRange(name string) (RangeReader, error)
}

// RangeReader reads byte ranges of one immutable object snapshot. It
// embeds the standard io.ReaderAt contract: ReadAt returns a non-nil error
// when fewer than len(p) bytes are available at off.
type RangeReader interface {
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the object's size at open time.
	Size() int64
}

// MemBackend is an in-memory Backend, safe for concurrent use.
type MemBackend struct {
	mu      sync.RWMutex
	objects map[string][]byte

	// byte accounting for write-amplification measurement at the storage
	// layer (optional cross-check of the point-level accounting).
	bytesWritten int64
	bytesRead    int64
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{objects: make(map[string][]byte)}
}

// Write implements Backend.
func (m *MemBackend) Write(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = cp
	m.bytesWritten += int64(len(data))
	return nil
}

// Read implements Backend.
func (m *MemBackend) Read(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	m.bytesRead += int64(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Append implements Backend.
func (m *MemBackend) Append(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = append(m.objects[name], data...)
	m.bytesWritten += int64(len(data))
	return nil
}

// Remove implements Backend.
func (m *MemBackend) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, name)
	return nil
}

// List implements Backend.
func (m *MemBackend) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.objects))
	for n := range m.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Size implements Backend.
func (m *MemBackend) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(data)), nil
}

// OpenRange implements Backend. The reader captures the object's current
// byte image: Write replaces the stored slice wholesale and Append only
// writes past its length, so the captured bytes are never mutated.
func (m *MemBackend) OpenRange(name string) (RangeReader, error) {
	m.mu.RLock()
	data, ok := m.objects[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &memRangeReader{m: m, data: data}, nil
}

// memRangeReader serves ranged reads from a captured object image.
type memRangeReader struct {
	m    *MemBackend
	data []byte
}

// ReadAt implements io.ReaderAt over the captured image.
func (r *memRangeReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(r.data)) {
		return 0, fmt.Errorf("storage: read at %d beyond object of %d bytes", off, len(r.data))
	}
	n := copy(p, r.data[off:])
	r.m.mu.Lock()
	r.m.bytesRead += int64(n)
	r.m.mu.Unlock()
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// Size implements RangeReader.
func (r *memRangeReader) Size() int64 { return int64(len(r.data)) }

// BytesWritten returns the cumulative bytes written through this backend.
func (m *MemBackend) BytesWritten() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytesWritten
}

// BytesRead returns the cumulative bytes read through this backend.
func (m *MemBackend) BytesRead() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytesRead
}

// DiskBackend stores each object as a file inside a directory. Object names
// must not contain path separators.
type DiskBackend struct {
	dir string
	mu  sync.Mutex
}

// NewDiskBackend creates (if needed) and opens a directory-backed store.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &DiskBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (d *DiskBackend) Dir() string { return d.dir }

func (d *DiskBackend) path(name string) (string, error) {
	if strings.ContainsAny(name, "/\\") || name == "" || name == "." || name == ".." {
		return "", fmt.Errorf("storage: invalid object name %q", name)
	}
	return filepath.Join(d.dir, name), nil
}

// Write implements Backend. The object is written to a temp file and
// renamed into place so readers never observe a torn write.
func (d *DiskBackend) Write(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: rename: %w", err)
	}
	return nil
}

// Read implements Backend.
func (d *DiskBackend) Read(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read: %w", err)
	}
	return data, nil
}

// Append implements Backend.
func (d *DiskBackend) Append(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open append: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	return f.Sync()
}

// Remove implements Backend.
func (d *DiskBackend) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// List implements Backend.
func (d *DiskBackend) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// OpenRange implements Backend. The returned reader holds an open file
// descriptor, so (POSIX unlink semantics) it keeps serving reads after the
// object is Removed or atomically replaced — exactly the snapshot-at-open
// contract lazy SSTable readers need. The descriptor is released when the
// reader is garbage collected (os.File installs its own finalizer); an
// engine's working set of open tables therefore holds one fd per table,
// as mainstream LSM engines do.
func (d *DiskBackend) OpenRange(name string) (RangeReader, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: open range: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat: %w", err)
	}
	return &fileRangeReader{f: f, size: fi.Size()}, nil
}

// fileRangeReader serves ranged reads from an open file descriptor.
type fileRangeReader struct {
	f    *os.File
	size int64
}

// ReadAt implements io.ReaderAt.
func (r *fileRangeReader) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.f.ReadAt(p, off)
	if err == io.EOF && n == len(p) {
		err = nil
	}
	return n, err
}

// Size implements RangeReader.
func (r *fileRangeReader) Size() int64 { return r.size }

// Size implements Backend.
func (d *DiskBackend) Size(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
