package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjected is the error returned by a tripped FaultBackend. It wraps the
// op index at which the fault fired so failures are attributable in test
// output.
var ErrInjected = errors.New("storage: injected fault")

// FaultBackend wraps a Backend and injects a permanent storage failure
// after a budget of mutating operations (Write, Append, Remove), simulating
// a crash or a dying device at an exact point in the write sequence. By
// default reads pass through — after the "crash", the surviving state can
// be inspected or recovered from.
//
// The recovery test suites use it in two passes: a counting pass with an
// unlimited budget records how many mutating ops a scripted workload
// performs, then one run per budget k in [0, N] crashes the workload at
// every possible point and asserts the reopened state matches the
// acknowledged writes.
//
// With tearing enabled, the append that exhausts the budget applies a
// prefix of its payload before failing — the torn-tail case a real crash
// mid-append produces, which WAL replay must discard.
//
// Reads have their own, independently armed fault plane for exercising the
// lazy SSTable read path: SetReadBudget allows n more read operations
// (Read, and each ReadAt through an OpenRange reader) before tripping; the
// trip is sticky — every later read fails too — until the budget is reset,
// modeling a dying disk rather than a transient hiccup. SetShortReads makes
// every ranged read return roughly half the requested bytes with
// io.ErrUnexpectedEOF, the torn-read analogue of SetTear.
type FaultBackend struct {
	inner Backend

	mu      sync.Mutex
	budget  int64 // mutating ops remaining; < 0 means unlimited
	tear    bool
	tripped bool
	ops     int64

	readBudget  int64 // read ops remaining; < 0 means unlimited
	readTripped bool
	shortReads  bool
	readOps     int64
}

// NewFaultBackend wraps inner with unlimited write and read budgets
// (counting mode). Arm it with SetBudget / SetReadBudget.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner, budget: -1, readBudget: -1}
}

// SetBudget allows n more mutating operations; the (n+1)-th and all later
// ones fail with ErrInjected. A negative n disarms the fault (unlimited).
// Resetting the budget also clears a previous trip.
func (f *FaultBackend) SetBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
	f.tripped = false
}

// SetTear makes the budget-exhausting Append apply half of its payload
// before failing, producing a torn record at the object's tail.
func (f *FaultBackend) SetTear(tear bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tear = tear
}

// Ops returns the number of mutating operations attempted so far
// (including the one that tripped the fault).
func (f *FaultBackend) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Tripped reports whether the fault has fired.
func (f *FaultBackend) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// take accounts one mutating op. It returns (tearNow, err): err is non-nil
// once the budget is exhausted; tearNow is set only on the single op that
// trips the fault when tearing is enabled.
func (f *FaultBackend) take() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.budget < 0 {
		return false, nil
	}
	if f.budget == 0 {
		first := !f.tripped
		f.tripped = true
		return first && f.tear, fmt.Errorf("%w (op %d)", ErrInjected, f.ops)
	}
	f.budget--
	return false, nil
}

// Write implements Backend.
func (f *FaultBackend) Write(name string, data []byte) error {
	if _, err := f.take(); err != nil {
		return err
	}
	return f.inner.Write(name, data)
}

// Append implements Backend. The tripping append may tear: half the
// payload reaches the inner backend before the error is returned.
func (f *FaultBackend) Append(name string, data []byte) error {
	tearNow, err := f.take()
	if err != nil {
		if tearNow && len(data) > 1 {
			f.inner.Append(name, data[:len(data)/2])
		}
		return err
	}
	return f.inner.Append(name, data)
}

// Remove implements Backend.
func (f *FaultBackend) Remove(name string) error {
	if _, err := f.take(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// SetReadBudget allows n more read operations; the (n+1)-th and all later
// ones fail with ErrInjected (sticky trip). A negative n disarms read
// faults. Resetting the budget clears a previous trip.
func (f *FaultBackend) SetReadBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readBudget = n
	f.readTripped = false
}

// SetShortReads makes every subsequent ranged read return roughly half of
// the requested bytes with io.ErrUnexpectedEOF instead of the full range.
func (f *FaultBackend) SetShortReads(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortReads = on
}

// ReadOps returns the number of read operations attempted so far.
func (f *FaultBackend) ReadOps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readOps
}

// ReadTripped reports whether the read fault has fired.
func (f *FaultBackend) ReadTripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readTripped
}

// takeRead accounts one read op, returning (short, err).
func (f *FaultBackend) takeRead() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readOps++
	if f.readBudget < 0 {
		return f.shortReads, nil
	}
	if f.readBudget == 0 {
		f.readTripped = true
		return false, fmt.Errorf("%w (read op %d)", ErrInjected, f.readOps)
	}
	f.readBudget--
	return f.shortReads, nil
}

// Read implements Backend; it fails once the read budget is exhausted.
func (f *FaultBackend) Read(name string) ([]byte, error) {
	if _, err := f.takeRead(); err != nil {
		return nil, err
	}
	return f.inner.Read(name)
}

// OpenRange implements Backend. Opening itself is free; every ReadAt on
// the returned reader draws from the read budget and honors short reads.
func (f *FaultBackend) OpenRange(name string) (RangeReader, error) {
	inner, err := f.inner.OpenRange(name)
	if err != nil {
		return nil, err
	}
	return &faultRangeReader{f: f, inner: inner}, nil
}

// faultRangeReader injects read faults into one object's ranged reads.
type faultRangeReader struct {
	f     *FaultBackend
	inner RangeReader
}

// ReadAt implements io.ReaderAt with budget and short-read injection.
func (r *faultRangeReader) ReadAt(p []byte, off int64) (int, error) {
	short, err := r.f.takeRead()
	if err != nil {
		return 0, err
	}
	if short && len(p) > 1 {
		n, err := r.inner.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, io.ErrUnexpectedEOF
	}
	return r.inner.ReadAt(p, off)
}

// Size implements RangeReader.
func (r *faultRangeReader) Size() int64 { return r.inner.Size() }

// List implements Backend (never fails by injection).
func (f *FaultBackend) List() ([]string, error) { return f.inner.List() }

// Size implements Backend (never fails by injection).
func (f *FaultBackend) Size(name string) (int64, error) { return f.inner.Size(name) }
