package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the error returned by a tripped FaultBackend. It wraps the
// op index at which the fault fired so failures are attributable in test
// output.
var ErrInjected = errors.New("storage: injected fault")

// FaultBackend wraps a Backend and injects a permanent storage failure
// after a budget of mutating operations (Write, Append, Remove), simulating
// a crash or a dying device at an exact point in the write sequence. Reads
// always pass through — after the "crash", the surviving state can be
// inspected or recovered from.
//
// The recovery test suites use it in two passes: a counting pass with an
// unlimited budget records how many mutating ops a scripted workload
// performs, then one run per budget k in [0, N] crashes the workload at
// every possible point and asserts the reopened state matches the
// acknowledged writes.
//
// With tearing enabled, the append that exhausts the budget applies a
// prefix of its payload before failing — the torn-tail case a real crash
// mid-append produces, which WAL replay must discard.
type FaultBackend struct {
	inner Backend

	mu      sync.Mutex
	budget  int64 // mutating ops remaining; < 0 means unlimited
	tear    bool
	tripped bool
	ops     int64
}

// NewFaultBackend wraps inner with an unlimited budget (counting mode).
// Arm it with SetBudget.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner, budget: -1}
}

// SetBudget allows n more mutating operations; the (n+1)-th and all later
// ones fail with ErrInjected. A negative n disarms the fault (unlimited).
// Resetting the budget also clears a previous trip.
func (f *FaultBackend) SetBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
	f.tripped = false
}

// SetTear makes the budget-exhausting Append apply half of its payload
// before failing, producing a torn record at the object's tail.
func (f *FaultBackend) SetTear(tear bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tear = tear
}

// Ops returns the number of mutating operations attempted so far
// (including the one that tripped the fault).
func (f *FaultBackend) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Tripped reports whether the fault has fired.
func (f *FaultBackend) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// take accounts one mutating op. It returns (tearNow, err): err is non-nil
// once the budget is exhausted; tearNow is set only on the single op that
// trips the fault when tearing is enabled.
func (f *FaultBackend) take() (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.budget < 0 {
		return false, nil
	}
	if f.budget == 0 {
		first := !f.tripped
		f.tripped = true
		return first && f.tear, fmt.Errorf("%w (op %d)", ErrInjected, f.ops)
	}
	f.budget--
	return false, nil
}

// Write implements Backend.
func (f *FaultBackend) Write(name string, data []byte) error {
	if _, err := f.take(); err != nil {
		return err
	}
	return f.inner.Write(name, data)
}

// Append implements Backend. The tripping append may tear: half the
// payload reaches the inner backend before the error is returned.
func (f *FaultBackend) Append(name string, data []byte) error {
	tearNow, err := f.take()
	if err != nil {
		if tearNow && len(data) > 1 {
			f.inner.Append(name, data[:len(data)/2])
		}
		return err
	}
	return f.inner.Append(name, data)
}

// Remove implements Backend.
func (f *FaultBackend) Remove(name string) error {
	if _, err := f.take(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Read implements Backend (never fails by injection).
func (f *FaultBackend) Read(name string) ([]byte, error) { return f.inner.Read(name) }

// List implements Backend (never fails by injection).
func (f *FaultBackend) List() ([]string, error) { return f.inner.List() }

// Size implements Backend (never fails by injection).
func (f *FaultBackend) Size(name string) (int64, error) { return f.inner.Size(name) }
