package storage

import (
	"errors"
	"testing"
)

func TestFaultBackendBudget(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend())
	fb.SetBudget(2)
	if err := fb.Write("a", []byte("x")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := fb.Append("a", []byte("y")); err != nil {
		t.Fatalf("second write: %v", err)
	}
	if err := fb.Write("b", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write should trip: %v", err)
	}
	if !fb.Tripped() {
		t.Error("Tripped() = false after injection")
	}
	// Sticky: every later mutating op keeps failing.
	if err := fb.Remove("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("Remove after trip: %v", err)
	}
	// Reads keep working on the surviving state.
	data, err := fb.Read("a")
	if err != nil || string(data) != "xy" {
		t.Errorf("Read after trip: %q, %v", data, err)
	}
	if fb.Ops() != 4 {
		t.Errorf("Ops = %d, want 4", fb.Ops())
	}
}

func TestFaultBackendUnlimitedCountsOps(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend())
	for i := 0; i < 5; i++ {
		if err := fb.Append("log", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if fb.Ops() != 5 {
		t.Errorf("Ops = %d, want 5", fb.Ops())
	}
	if fb.Tripped() {
		t.Error("unlimited budget tripped")
	}
}

func TestFaultBackendTearsFailingAppend(t *testing.T) {
	inner := NewMemBackend()
	fb := NewFaultBackend(inner)
	fb.SetTear(true)
	fb.SetBudget(1)
	if err := fb.Append("log", []byte("abcd")); err != nil {
		t.Fatalf("budgeted append: %v", err)
	}
	if err := fb.Append("log", []byte("efgh")); !errors.Is(err, ErrInjected) {
		t.Fatalf("tripping append: %v", err)
	}
	data, err := inner.Read("log")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcdef" {
		t.Errorf("torn append left %q, want %q (half the failing payload applied)", data, "abcdef")
	}
	// Only the tripping append tears; later ones fail cleanly.
	if err := fb.Append("log", []byte("ijkl")); !errors.Is(err, ErrInjected) {
		t.Fatal("expected sticky failure")
	}
	data, _ = inner.Read("log")
	if string(data) != "abcdef" {
		t.Errorf("post-trip append modified state: %q", data)
	}
}

func TestFaultBackendRearm(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend())
	fb.SetBudget(0)
	if err := fb.Write("a", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget 0: %v", err)
	}
	fb.SetBudget(-1)
	if err := fb.Write("a", nil); err != nil {
		t.Fatalf("disarmed: %v", err)
	}
	if fb.Tripped() {
		t.Error("still tripped after rearm")
	}
}
