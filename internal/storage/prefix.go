package storage

import (
	"strings"
)

// PrefixBackend namespaces a Backend: every object name is transparently
// prefixed, and List returns only (and strips) names under the prefix. The
// multi-series database layer gives each series its own namespace inside
// one shared backend.
type PrefixBackend struct {
	inner  Backend
	prefix string
}

// NewPrefixBackend wraps inner under prefix. The prefix must be non-empty
// and must not contain path separators (it becomes part of object names).
func NewPrefixBackend(inner Backend, prefix string) *PrefixBackend {
	if prefix == "" || strings.ContainsAny(prefix, "/\\") {
		panic("storage: invalid backend prefix")
	}
	return &PrefixBackend{inner: inner, prefix: prefix + "."}
}

// Write implements Backend.
func (p *PrefixBackend) Write(name string, data []byte) error {
	return p.inner.Write(p.prefix+name, data)
}

// Read implements Backend.
func (p *PrefixBackend) Read(name string) ([]byte, error) {
	return p.inner.Read(p.prefix + name)
}

// Append implements Backend.
func (p *PrefixBackend) Append(name string, data []byte) error {
	return p.inner.Append(p.prefix+name, data)
}

// Remove implements Backend.
func (p *PrefixBackend) Remove(name string) error {
	return p.inner.Remove(p.prefix + name)
}

// Size implements Backend.
func (p *PrefixBackend) Size(name string) (int64, error) {
	return p.inner.Size(p.prefix + name)
}

// OpenRange implements Backend.
func (p *PrefixBackend) OpenRange(name string) (RangeReader, error) {
	return p.inner.OpenRange(p.prefix + name)
}

// List implements Backend, returning only names under this prefix with
// the prefix stripped.
func (p *PrefixBackend) List() ([]string, error) {
	all, err := p.inner.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range all {
		if strings.HasPrefix(n, p.prefix) {
			out = append(out, strings.TrimPrefix(n, p.prefix))
		}
	}
	return out, nil
}
