package index

import (
	"errors"
	"testing"
)

// FuzzMatcherParse drives ParseMatchers with hostile input: it must never
// panic, every failure must be a typed ErrBadMatcher, and every success
// must round-trip (format → reparse → identical rendering) so the server
// can echo a canonical form of what it executed.
func FuzzMatcherParse(f *testing.F) {
	for _, seed := range []string{
		"region=eu",
		"region=eu,device=~d[0-9]+",
		`{ a = "x,y" , b != "" }`,
		"a!~.*,b=~(x|y)z?",
		`k="\"quoted\""`,
		"region=eu,region=us,region=eu",
		"_x=1",
		"a=",
		"{}",
		"a=~[",
		"a==b",
		"a = b , c = d",
		"\xff\xfe=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ms, err := ParseMatchers(s)
		if err != nil {
			if !errors.Is(err, ErrBadMatcher) {
				t.Fatalf("ParseMatchers(%q): untyped error %v", s, err)
			}
			return
		}
		if len(ms) == 0 {
			t.Fatalf("ParseMatchers(%q): nil error but no matchers", s)
		}
		canon := FormatMatchers(ms)
		ms2, err := ParseMatchers(canon)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", canon, s, err)
		}
		if got := FormatMatchers(ms2); got != canon {
			t.Fatalf("round trip not stable: %q -> %q -> %q", s, canon, got)
		}
	})
}
