// Package index is the tag-indexed series-discovery layer: an inverted
// index mapping label pairs to posting lists of series IDs, queried with
// Prometheus-style matchers (equality, negated equality, anchored regular
// expressions, negated regular expressions). The multi-series store
// (internal/tsdb) keeps one Index over every registered series' label set
// and rebuilds it from the durable catalog on recovery; resolution cost is
// sorted-posting-list intersection and union, independent of total point
// volume.
package index

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/series"
)

// Op is a matcher's comparison operator.
type Op uint8

const (
	// OpEq matches series whose value for the label equals Value exactly.
	OpEq Op = iota
	// OpNeq matches series whose value for the label differs from Value.
	OpNeq
	// OpRe matches series whose value matches the anchored regexp Value.
	OpRe
	// OpNotRe matches series whose value does not match the regexp.
	OpNotRe
)

// String renders the operator in matcher syntax.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpRe:
		return "=~"
	case OpNotRe:
		return "!~"
	}
	return fmt.Sprintf("op(%d)", op)
}

// ErrBadMatcher is the typed error family for matcher construction and
// parse failures; every error out of NewMatcher and ParseMatchers wraps it.
var ErrBadMatcher = errors.New("index: bad matcher")

// maxMatcherLen bounds one matcher expression's byte length (and therefore
// the compiled regexp's source), keeping hostile inputs from allocating
// unbounded parse state.
const maxMatcherLen = 1024

// Matcher is one label predicate. A series' value for the label is the
// labeled value when the label is present and "" when absent, so negated
// matchers (k!="v", k!~"re") match series that lack the label entirely —
// the same absent-is-empty convention Prometheus uses.
type Matcher struct {
	Name  string
	Op    Op
	Value string
	re    *regexp.Regexp // compiled anchored regexp for OpRe/OpNotRe
}

// NewMatcher validates the label name and, for regexp operators, compiles
// Value fully anchored (a ^(?:...)$ wrapper, like Prometheus) so d[0-9]+
// means the whole value, not a substring.
var matcherNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

func NewMatcher(name string, op Op, value string) (Matcher, error) {
	if !matcherNameRE.MatchString(name) {
		return Matcher{}, fmt.Errorf("%w: bad label name %q", ErrBadMatcher, name)
	}
	if len(value) > maxMatcherLen {
		return Matcher{}, fmt.Errorf("%w: value exceeds %d bytes", ErrBadMatcher, maxMatcherLen)
	}
	m := Matcher{Name: name, Op: op, Value: value}
	switch op {
	case OpEq, OpNeq:
	case OpRe, OpNotRe:
		re, err := regexp.Compile("^(?:" + value + ")$")
		if err != nil {
			return Matcher{}, fmt.Errorf("%w: bad regexp %q: %v", ErrBadMatcher, value, err)
		}
		m.re = re
	default:
		return Matcher{}, fmt.Errorf("%w: unknown op %d", ErrBadMatcher, op)
	}
	return m, nil
}

// MustMatcher is NewMatcher for tests; it panics on invalid input.
func MustMatcher(name string, op Op, value string) Matcher {
	m, err := NewMatcher(name, op, value)
	if err != nil {
		panic(err)
	}
	return m
}

// Matches reports whether a series whose value for m.Name is v ("" when
// the label is absent) satisfies the predicate. This is the reference
// semantics the inverted index must agree with; the property test checks
// Index.Match against a brute-force sweep of exactly this function.
func (m Matcher) Matches(v string) bool {
	switch m.Op {
	case OpEq:
		return v == m.Value
	case OpNeq:
		return v != m.Value
	case OpRe:
		return m.re.MatchString(v)
	case OpNotRe:
		return !m.re.MatchString(v)
	}
	return false
}

// MatchesLabels applies the predicate to a full label set.
func (m Matcher) MatchesLabels(ls series.Labels) bool {
	v, _ := ls.Get(m.Name)
	return m.Matches(v)
}

// String renders the matcher in parseable syntax, quoting the value.
func (m Matcher) String() string {
	return fmt.Sprintf("%s%s%q", m.Name, m.Op, m.Value)
}

// FormatMatchers renders a matcher list in ParseMatchers syntax.
func FormatMatchers(ms []Matcher) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = m.String()
	}
	return strings.Join(parts, ",")
}

// ParseMatchers parses a comma-separated matcher list:
//
//	region=eu,device=~d[0-9]+,dc!=west,host!~can.*
//
// Values may be double-quoted (Go string syntax) to contain commas,
// spaces, or operator characters: env="a,b". An optional surrounding
// {...} is accepted and stripped. Errors wrap ErrBadMatcher.
func ParseMatchers(s string) ([]Matcher, error) {
	if len(s) > 64*maxMatcherLen {
		return nil, fmt.Errorf("%w: expression exceeds %d bytes", ErrBadMatcher, 64*maxMatcherLen)
	}
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "{") {
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("%w: unbalanced braces", ErrBadMatcher)
		}
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	if s == "" {
		return nil, fmt.Errorf("%w: empty matcher expression", ErrBadMatcher)
	}
	var out []Matcher
	rest := s
	for rest != "" {
		m, tail, err := parseOne(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		rest = tail
	}
	return out, nil
}

// parseOne consumes one matcher from the head of s and returns the
// remainder after the separating comma.
func parseOne(s string) (Matcher, string, error) {
	s = strings.TrimSpace(s)
	// Label name: identifier prefix.
	i := 0
	for i < len(s) && (s[i] == '_' ||
		(s[i] >= 'a' && s[i] <= 'z') || (s[i] >= 'A' && s[i] <= 'Z') ||
		(i > 0 && s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	if i == 0 {
		return Matcher{}, "", fmt.Errorf("%w: expected label name at %q", ErrBadMatcher, clip(s))
	}
	name := s[:i]
	rest := strings.TrimSpace(s[i:])
	var op Op
	switch {
	case strings.HasPrefix(rest, "=~"):
		op, rest = OpRe, rest[2:]
	case strings.HasPrefix(rest, "!="):
		op, rest = OpNeq, rest[2:]
	case strings.HasPrefix(rest, "!~"):
		op, rest = OpNotRe, rest[2:]
	case strings.HasPrefix(rest, "="):
		op, rest = OpEq, rest[1:]
	default:
		return Matcher{}, "", fmt.Errorf("%w: expected operator after %q at %q", ErrBadMatcher, name, clip(rest))
	}
	rest = strings.TrimSpace(rest)
	var value, tail string
	if strings.HasPrefix(rest, `"`) {
		// Quoted value: find the closing quote honoring backslash escapes,
		// then let the Go scanner handle escape sequences.
		end := -1
		for j := 1; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return Matcher{}, "", fmt.Errorf("%w: unterminated quoted value at %q", ErrBadMatcher, clip(rest))
		}
		unq, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return Matcher{}, "", fmt.Errorf("%w: bad quoted value %q: %v", ErrBadMatcher, clip(rest[:end+1]), err)
		}
		value, tail = unq, rest[end+1:]
	} else {
		// Bare value: up to the next comma.
		if j := strings.IndexByte(rest, ','); j >= 0 {
			value, tail = rest[:j], rest[j:]
		} else {
			value, tail = rest, ""
		}
		value = strings.TrimSpace(value)
	}
	tail = strings.TrimSpace(tail)
	if tail != "" {
		if !strings.HasPrefix(tail, ",") {
			return Matcher{}, "", fmt.Errorf("%w: expected ',' at %q", ErrBadMatcher, clip(tail))
		}
		tail = strings.TrimSpace(tail[1:])
		if tail == "" {
			return Matcher{}, "", fmt.Errorf("%w: trailing comma", ErrBadMatcher)
		}
	}
	m, err := NewMatcher(name, op, value)
	if err != nil {
		return Matcher{}, "", err
	}
	return m, tail, nil
}

// clip truncates a string for error messages.
func clip(s string) string {
	if len(s) > 32 {
		return s[:32] + "…"
	}
	return s
}
