package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/series"
)

// The matcher-resolution property test: for randomized label universes,
// series populations, matcher shapes, and add/drop churn, Index.Match must
// return exactly the series a brute-force sweep of Matcher.MatchesLabels
// over every registered label set returns. This is the satellite pin for
// the tentpole — the posting-list algebra (intersection, union,
// complement, regexp expansion, absent-is-empty semantics) against the
// four-line reference semantics.

// bruteMatch is the reference resolution: filter every registered set.
func bruteMatch(reg map[string]series.Labels, ms []Matcher) []string {
	var out []string
	for id, ls := range reg {
		ok := true
		for _, m := range ms {
			if !m.MatchesLabels(ls) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	if out == nil {
		out = []string{}
	}
	return out
}

// randLabels draws a random label set from the universe of names/values.
func randLabels(rng *rand.Rand, names []string, card int) series.Labels {
	n := 1 + rng.Intn(len(names))
	picked := rng.Perm(len(names))[:n]
	m := make(map[string]string, n)
	for _, i := range picked {
		m[names[i]] = fmt.Sprintf("%s%d", names[i][:1], rng.Intn(card))
	}
	return series.MustLabels(m)
}

// randMatcher draws a random matcher, biased toward values that exist.
func randMatcher(rng *rand.Rand, names []string, card int) Matcher {
	name := names[rng.Intn(len(names))]
	var value string
	switch rng.Intn(4) {
	case 0:
		value = "" // absent-label probe
	case 1:
		value = fmt.Sprintf("%s%d", name[:1], rng.Intn(2*card)) // maybe nonexistent
	default:
		value = fmt.Sprintf("%s%d", name[:1], rng.Intn(card))
	}
	op := Op(rng.Intn(4))
	if op == OpRe || op == OpNotRe {
		switch rng.Intn(4) {
		case 0:
			value = name[:1] + "[0-9]+"
		case 1:
			value = name[:1] + fmt.Sprintf("%d|%s%d", rng.Intn(card), name[:1], rng.Intn(card))
		case 2:
			value = ".*"
		default:
			value = name[:1] + fmt.Sprintf("%d", rng.Intn(card)) + ".*"
		}
	}
	return MustMatcher(name, op, value)
}

func TestMatchEquivalenceProperty(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(7000 + round)))
		names := []string{"region", "device", "zone", "metric", "host"}[:2+rng.Intn(4)]
		card := 1 + rng.Intn(8)

		ix := New()
		reg := make(map[string]series.Labels) // the brute-force mirror

		ops := 40 + rng.Intn(120)
		var ids []string
		for o := 0; o < ops; o++ {
			// Churn: mostly adds, interleaved drops once populated.
			if len(ids) > 4 && rng.Intn(4) == 0 {
				victim := ids[rng.Intn(len(ids))]
				ix.Remove(victim)
				delete(reg, victim)
			} else {
				ls := randLabels(rng, names, card)
				id := ls.ID()
				ix.Add(id, ls)
				reg[id] = ls
				ids = append(ids, id)
			}

			// Every few mutations, compare a batch of random matcher
			// queries against brute force.
			if o%7 != 0 {
				continue
			}
			for q := 0; q < 8; q++ {
				ms := make([]Matcher, 1+rng.Intn(3))
				for i := range ms {
					ms[i] = randMatcher(rng, names, card)
				}
				got := ix.Match(ms)
				if got == nil {
					got = []string{}
				}
				want := bruteMatch(reg, ms)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d op %d: Match(%s) = %v, want %v (registered %d series)",
						round, o, FormatMatchers(ms), got, want, len(reg))
				}
			}
		}

		// Parity with a rebuilt index: re-adding every surviving label set
		// into a fresh index (exactly what tsdb recovery does from the
		// catalog) must answer identically.
		rebuilt := New()
		for id, ls := range reg {
			rebuilt.Add(id, ls)
		}
		for q := 0; q < 20; q++ {
			ms := []Matcher{randMatcher(rng, names, card), randMatcher(rng, names, card)}
			a, b := ix.Match(ms), rebuilt.Match(ms)
			if len(a) == 0 && len(b) == 0 {
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("round %d: rebuilt index diverges on %s: %v vs %v", round, FormatMatchers(ms), a, b)
			}
		}
	}
}
