package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/series"
)

// Index is the in-memory inverted index over registered series label
// sets. It is safe for concurrent use: Add/Remove take the write lock,
// Match and the read accessors take the read lock, and the tsdb layer
// calls the mutators under its own catalog lock so the index can never
// run ahead of the durable catalog (index ⊆ catalog at every instant; see
// DESIGN.md §7.9).
//
// Layout: one posting list — a sorted slice of series IDs — per (label
// name, value) pair, plus a per-label-name value directory for regexp
// expansion and a universe list for negated matchers. Posting lists are
// copy-on-write under the lock: Match never returns aliases into mutable
// state.
type Index struct {
	mu sync.RWMutex
	// byID maps a registered series ID to its label set.
	byID map[string]series.Labels
	// postings maps label name → value → sorted series IDs.
	postings map[string]map[string][]string
	// universe is the sorted list of every registered ID.
	universe []string
	// universeDirty marks universe for rebuild after a mutation.
	universeDirty bool

	matches atomic.Int64 // Match calls served
}

// New creates an empty index.
func New() *Index {
	return &Index{
		byID:     make(map[string]series.Labels),
		postings: make(map[string]map[string][]string),
	}
}

// Add registers (or re-registers) a series under its label set.
// Re-registering with different labels replaces the old postings.
func (ix *Index) Add(id string, ls series.Labels) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if old, ok := ix.byID[id]; ok {
		if old.Equal(ls) {
			return
		}
		ix.removeLocked(id, old)
	}
	// Labels escape into long-lived index state: copy so later caller
	// mutations cannot corrupt postings.
	cp := make(series.Labels, len(ls))
	copy(cp, ls)
	ix.byID[id] = cp
	for _, l := range cp {
		vals := ix.postings[l.Name]
		if vals == nil {
			vals = make(map[string][]string)
			ix.postings[l.Name] = vals
		}
		vals[l.Value] = insertSorted(vals[l.Value], id)
	}
	ix.universeDirty = true
}

// Remove drops a series from the index. Unknown IDs are a no-op.
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ls, ok := ix.byID[id]
	if !ok {
		return
	}
	ix.removeLocked(id, ls)
	delete(ix.byID, id)
	ix.universeDirty = true
}

// removeLocked deletes id from every posting list of ls.
func (ix *Index) removeLocked(id string, ls series.Labels) {
	for _, l := range ls {
		vals := ix.postings[l.Name]
		if vals == nil {
			continue
		}
		if pl := deleteSorted(vals[l.Value], id); len(pl) == 0 {
			delete(vals, l.Value)
		} else {
			vals[l.Value] = pl
		}
		if len(vals) == 0 {
			delete(ix.postings, l.Name)
		}
	}
}

// Labels returns the registered label set for id.
func (ix *Index) Labels(id string) (series.Labels, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ls, ok := ix.byID[id]
	return ls, ok
}

// Series returns the number of registered series.
func (ix *Index) Series() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byID)
}

// Match resolves the conjunction of matchers to the sorted list of series
// IDs whose label sets satisfy every predicate. An empty matcher list
// matches nothing. The result is freshly allocated.
//
// Each matcher evaluates to a sorted ID set — a posting-list lookup for
// k=v, a union of the label's posting lists for regexp matchers, and a
// complement against the universe for predicates that match the empty
// value (absent label) — and the sets are intersected smallest-first.
func (ix *Index) Match(ms []Matcher) []string {
	ix.matches.Add(1)
	if len(ms) == 0 {
		return nil
	}
	ix.mu.Lock()
	if ix.universeDirty {
		ix.universe = ix.rebuildUniverseLocked()
		ix.universeDirty = false
	}
	ix.mu.Unlock()

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	sets := make([][]string, len(ms))
	for i, m := range ms {
		sets[i] = ix.evalLocked(m)
		if len(sets[i]) == 0 {
			return []string{}
		}
	}
	sort.Slice(sets, func(a, b int) bool { return len(sets[a]) < len(sets[b]) })
	out := append([]string(nil), sets[0]...)
	for _, s := range sets[1:] {
		out = intersectSorted(out, s)
		if len(out) == 0 {
			return out
		}
	}
	return out
}

// evalLocked resolves one matcher to a sorted ID set. Caller holds the
// read lock (universe already rebuilt).
func (ix *Index) evalLocked(m Matcher) []string {
	vals := ix.postings[m.Name]
	switch m.Op {
	case OpEq:
		if m.Value == "" {
			// k="" matches series without the label at all (values are
			// validated non-empty at registration).
			return subtractSorted(ix.universe, ix.labelUnionLocked(vals))
		}
		return vals[m.Value]
	case OpNeq:
		if m.Value == "" {
			// k!="" matches series that do have the label.
			return ix.labelUnionLocked(vals)
		}
		return subtractSorted(ix.universe, vals[m.Value])
	case OpRe, OpNotRe:
		// Expand the regexp over the label's value directory.
		var matched [][]string
		for v, pl := range vals {
			if m.re.MatchString(v) {
				matched = append(matched, pl)
			}
		}
		pos := unionSorted(matched)
		if m.re.MatchString("") {
			// The pattern accepts the empty value, so series lacking the
			// label match too.
			pos = unionSorted([][]string{pos, subtractSorted(ix.universe, ix.labelUnionLocked(vals))})
		}
		if m.Op == OpRe {
			return pos
		}
		return subtractSorted(ix.universe, pos)
	}
	return nil
}

// labelUnionLocked returns the sorted union of every posting list under
// one label name — the set of series that carry the label at all.
func (ix *Index) labelUnionLocked(vals map[string][]string) []string {
	if len(vals) == 0 {
		return nil
	}
	lists := make([][]string, 0, len(vals))
	for _, pl := range vals {
		lists = append(lists, pl)
	}
	return unionSorted(lists)
}

// rebuildUniverseLocked re-sorts the full ID list after mutations.
func (ix *Index) rebuildUniverseLocked() []string {
	u := make([]string, 0, len(ix.byID))
	for id := range ix.byID {
		u = append(u, id)
	}
	sort.Strings(u)
	return u
}

// Stats is a snapshot of index shape for metrics.
type Stats struct {
	// Series is the number of registered series.
	Series int
	// LabelNames is the number of distinct label names.
	LabelNames int
	// LabelPairs is the number of distinct (name, value) pairs — posting
	// lists held.
	LabelPairs int
	// Postings is the total posting-list entry count (Σ list lengths).
	Postings int
	// Matches counts Match calls served since creation.
	Matches int64
}

// Stats snapshots the index counters.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Series: len(ix.byID), LabelNames: len(ix.postings), Matches: ix.matches.Load()}
	for _, vals := range ix.postings {
		st.LabelPairs += len(vals)
		for _, pl := range vals {
			st.Postings += len(pl)
		}
	}
	return st
}

// ---- sorted-slice set operations ----

// insertSorted returns pl with id inserted in order (copy-on-write: the
// original backing array is never mutated in place, so Match results
// handed out under a previous lock hold stay stable).
func insertSorted(pl []string, id string) []string {
	i := sort.SearchStrings(pl, id)
	if i < len(pl) && pl[i] == id {
		return pl
	}
	out := make([]string, 0, len(pl)+1)
	out = append(out, pl[:i]...)
	out = append(out, id)
	return append(out, pl[i:]...)
}

// deleteSorted returns pl without id (copy-on-write).
func deleteSorted(pl []string, id string) []string {
	i := sort.SearchStrings(pl, id)
	if i >= len(pl) || pl[i] != id {
		return pl
	}
	out := make([]string, 0, len(pl)-1)
	out = append(out, pl[:i]...)
	return append(out, pl[i+1:]...)
}

// intersectSorted returns a ∩ b, both sorted.
func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// subtractSorted returns a \ b, both sorted.
func subtractSorted(a, b []string) []string {
	var out []string
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// unionSorted merges sorted lists into one sorted, deduplicated list.
func unionSorted(lists [][]string) []string {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]string(nil), lists[0]...)
	}
	// Pairwise fold; list counts here are small (label cardinalities).
	out := append([]string(nil), lists[0]...)
	for _, l := range lists[1:] {
		out = mergeTwoSorted(out, l)
	}
	return out
}

// mergeTwoSorted merges two sorted lists, deduplicating.
func mergeTwoSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
