package index

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/series"
)

func mustAdd(t *testing.T, ix *Index, m map[string]string) string {
	t.Helper()
	ls, err := series.NewLabels(m)
	if err != nil {
		t.Fatalf("NewLabels(%v): %v", m, err)
	}
	id := ls.ID()
	ix.Add(id, ls)
	return id
}

func TestMatchBasics(t *testing.T) {
	ix := New()
	eu1 := mustAdd(t, ix, map[string]string{"region": "eu", "device": "d1"})
	eu2 := mustAdd(t, ix, map[string]string{"region": "eu", "device": "d2"})
	us1 := mustAdd(t, ix, map[string]string{"region": "us", "device": "d1"})
	bare := mustAdd(t, ix, map[string]string{"metric": "temp"})

	sorted := func(ids ...string) []string { out := append([]string(nil), ids...); sort.Strings(out); return out }
	cases := []struct {
		expr string
		want []string
	}{
		{"region=eu", sorted(eu1, eu2)},
		{"region=eu,device=d1", sorted(eu1)},
		{"region!=eu", sorted(us1, bare)},
		{"device=~d[0-9]+", sorted(eu1, eu2, us1)},
		{"device!~d1", sorted(eu2, bare)},
		{"region=~e.*", sorted(eu1, eu2)},
		{"region=~.*", sorted(eu1, eu2, us1, bare)}, // matches "" → absent too
		{"region=", sorted(bare)},                   // empty value = absent label
		{"region!=", sorted(eu1, eu2, us1)},         // has the label at all
		{"region=eu,region=us", []string{}},
		{"nosuch=x", []string{}},
	}
	for _, c := range cases {
		ms, err := ParseMatchers(c.expr)
		if err != nil {
			t.Fatalf("ParseMatchers(%q): %v", c.expr, err)
		}
		got := ix.Match(ms)
		if got == nil {
			got = []string{}
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Match(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestRemoveAndReAdd(t *testing.T) {
	ix := New()
	id := mustAdd(t, ix, map[string]string{"region": "eu"})
	if got := ix.Match([]Matcher{MustMatcher("region", OpEq, "eu")}); len(got) != 1 {
		t.Fatalf("before remove: %v", got)
	}
	ix.Remove(id)
	if got := ix.Match([]Matcher{MustMatcher("region", OpEq, "eu")}); len(got) != 0 {
		t.Fatalf("after remove: %v", got)
	}
	if st := ix.Stats(); st.Series != 0 || st.LabelPairs != 0 || st.Postings != 0 {
		t.Fatalf("stats not empty after remove: %+v", st)
	}
	ix.Add(id, series.MustLabels(map[string]string{"region": "eu"}))
	if got := ix.Match([]Matcher{MustMatcher("region", OpEq, "eu")}); len(got) != 1 {
		t.Fatalf("after re-add: %v", got)
	}
}

func TestMatchResultIsStableAcrossMutation(t *testing.T) {
	ix := New()
	mustAdd(t, ix, map[string]string{"region": "eu", "device": "d1"})
	got := ix.Match([]Matcher{MustMatcher("region", OpEq, "eu")})
	snapshot := append([]string(nil), got...)
	mustAdd(t, ix, map[string]string{"region": "eu", "device": "d2"})
	mustAdd(t, ix, map[string]string{"region": "eu", "device": "d0"})
	if !reflect.DeepEqual(got, snapshot) {
		t.Fatalf("earlier Match result mutated: %v != %v", got, snapshot)
	}
}

func TestParseMatchersSyntax(t *testing.T) {
	ms, err := ParseMatchers(` { region = "eu, west" , device =~ "d[0-9]+" , dc != west } `)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d matchers: %v", len(ms), ms)
	}
	if ms[0].Name != "region" || ms[0].Op != OpEq || ms[0].Value != "eu, west" {
		t.Errorf("matcher 0 = %+v", ms[0])
	}
	if ms[1].Op != OpRe || ms[1].Value != "d[0-9]+" {
		t.Errorf("matcher 1 = %+v", ms[1])
	}
	if ms[2].Op != OpNeq || ms[2].Value != "west" {
		t.Errorf("matcher 2 = %+v", ms[2])
	}

	// Round trip: format → parse → equal.
	ms2, err := ParseMatchers(FormatMatchers(ms))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if FormatMatchers(ms2) != FormatMatchers(ms) {
		t.Fatalf("round trip: %q != %q", FormatMatchers(ms2), FormatMatchers(ms))
	}

	for _, bad := range []string{
		"", "{", "region", "=eu", "region=eu,,", "region=eu,",
		`region="eu`, "region=~d[0-9", "1name=x", "region eu",
	} {
		if _, err := ParseMatchers(bad); !errors.Is(err, ErrBadMatcher) {
			t.Errorf("ParseMatchers(%q): err=%v, want ErrBadMatcher", bad, err)
		}
	}
}

func TestLabelsID(t *testing.T) {
	a := series.MustLabels(map[string]string{"region": "eu", "device": "d1"})
	b := series.MustLabels(map[string]string{"device": "d1", "region": "eu"})
	if a.ID() != b.ID() {
		t.Fatalf("same labels, different IDs: %s vs %s", a.ID(), b.ID())
	}
	c := series.MustLabels(map[string]string{"region": "eu", "device": "d2"})
	if a.ID() == c.ID() {
		t.Fatalf("different labels, same ID: %s", a.ID())
	}
	// Length-prefixed encoding: ("ab","c") must differ from ("a","bc").
	d := series.Labels{{Name: "ab", Value: "c"}}
	e := series.Labels{{Name: "a", Value: "bc"}}
	if d.ID() == e.ID() {
		t.Fatal("concatenation-ambiguous label sets collided")
	}
}
