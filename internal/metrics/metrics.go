// Package metrics provides the measurement utilities of the evaluation
// harness: histograms for delay profiles (Fig. 8, 19), sample
// autocorrelation with white-noise bounds (Fig. 16a), windowed series with
// sliding-window smoothing for WA-over-time plots (Fig. 10, 17), and basic
// summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width histogram over float64 observations.
type Histogram struct {
	lo, hi  float64
	counts  []int64
	under   int64
	over    int64
	total   int64
	sum     float64
	sumSq   float64
	binsize float64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). Observations outside the range are tallied in under/over
// counters.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		counts:  make([]int64, bins),
		binsize: (hi - lo) / float64(bins),
	}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.total++
	h.sum += v
	h.sumSq += v * v
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		// Float division can round (v-lo)/binsize up to exactly len(counts)
		// for v just below hi (e.g. lo=0, hi=1, bins=3, v=Nextafter(1, 0)):
		// clamp to the last bucket.
		i := int((v - h.lo) / h.binsize)
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Stddev returns the sample standard deviation.
func (h *Histogram) Stddev() float64 {
	if h.total < 2 {
		return 0
	}
	n := float64(h.total)
	v := (h.sumSq - h.sum*h.sum/n) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Bins returns each bin's lower edge and count.
func (h *Histogram) Bins() ([]float64, []int64) {
	edges := make([]float64, len(h.counts))
	for i := range edges {
		edges[i] = h.lo + float64(i)*h.binsize
	}
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	return edges, counts
}

// OutOfRange returns the under/over tallies.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Quantile returns an approximate p-quantile (0 < p < 1) from the binned
// counts, interpolating linearly inside the bin where the cumulative count
// crosses p. Under-range observations resolve to lo, over-range to hi.
// Returns NaN when the histogram is empty — a quantile of no observations
// is undefined, and the package-level Quantile already says so; returning
// 0 here let an empty histogram masquerade as "instant" latency. Callers
// that serialize to JSON must filter the NaN (encoding/json rejects it).
// The error is bounded by one bin width, which is what the read-path
// latency reporting needs without retaining raw samples.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.total)
	cum := float64(h.under)
	if rank <= cum {
		return h.lo
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.binsize
		}
		cum = next
	}
	return h.hi
}

// Render draws an ASCII bar chart of the histogram, width characters wide,
// for terminal reports.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var max int64 = 1
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		edge := h.lo + float64(i)*h.binsize
		bar := int(float64(c) / float64(max) * float64(width))
		fmt.Fprintf(&b, "%12.0f | %s %d\n", edge, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Autocorrelation returns the sample autocorrelation function of xs at
// lags 1..maxLag, plus the ±1.96/√n white-noise confidence bound (the
// green lines of the paper's Fig. 16a, produced there with MATLAB's
// autocorr).
func Autocorrelation(xs []float64, maxLag int) (acf []float64, bound float64) {
	n := len(xs)
	if n < 2 {
		return nil, 0
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var den float64
	for _, v := range xs {
		den += (v - mean) * (v - mean)
	}
	acf = make([]float64, maxLag)
	if den == 0 {
		return acf, 0
	}
	for lag := 1; lag <= maxLag; lag++ {
		var num float64
		for i := lag; i < n; i++ {
			num += (xs[i] - mean) * (xs[i-lag] - mean)
		}
		acf[lag-1] = num / den
	}
	return acf, 1.96 / math.Sqrt(float64(n))
}

// Quantile returns the p-quantile of xs (type-7 interpolation); xs need
// not be sorted — a sorted copy is taken.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	i := int(h)
	frac := h - float64(i)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// SlidingMean smooths xs with a centered window of the given width,
// returning a slice of the same length. Edges use the available partial
// window. Used for the WA-over-time plots (Fig. 10).
func SlidingMean(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	half := window / 2
	var sum float64
	lo, hi := 0, 0 // current [lo, hi) window
	for i := range xs {
		wantLo := i - half
		if wantLo < 0 {
			wantLo = 0
		}
		wantHi := i + half + 1
		if wantHi > len(xs) {
			wantHi = len(xs)
		}
		for hi < wantHi {
			sum += xs[hi]
			hi++
		}
		for lo < wantLo {
			sum -= xs[lo]
			lo++
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// WindowedWA converts cumulative (ingested, written) checkpoints into
// per-window write amplification values: element i is the WA of the span
// between checkpoints i and i+1.
func WindowedWA(ingested, written []int64) []float64 {
	n := len(ingested)
	if len(written) < n {
		n = len(written)
	}
	if n < 2 {
		return nil
	}
	out := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		di := ingested[i] - ingested[i-1]
		dw := written[i] - written[i-1]
		if di <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(dw)/float64(di))
	}
	return out
}
