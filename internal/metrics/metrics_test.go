package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-49.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	edges, counts := h.Bins()
	if len(edges) != 10 || len(counts) != 10 {
		t.Fatalf("bins: %d edges, %d counts", len(edges), len(counts))
	}
	for i, c := range counts {
		if c != 10 {
			t.Errorf("bin %d count = %d, want 10", i, c)
		}
	}
	if edges[0] != 0 || edges[9] != 90 {
		t.Errorf("edges: %v", edges)
	}
}

func TestHistogramQuantileEmptyIsNaN(t *testing.T) {
	// An empty histogram has no quantiles; it must answer NaN like the
	// package-level Quantile does for an empty sample, not a fake 0 that
	// dashboards would plot as a real zero-latency reading.
	h := NewHistogram(0, 1, 10)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// One observation makes it well-defined again.
	h.Observe(0.25)
	if got := h.Quantile(0.5); math.IsNaN(got) {
		t.Errorf("non-empty Quantile(0.5) = NaN")
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Observe(-5)
	h.Observe(15)
	h.Observe(10) // hi edge is exclusive -> over
	h.Observe(5)
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramUpperEdgeAdjacent(t *testing.T) {
	// Regression: for v just below hi, (v-lo)/binsize can round up to
	// exactly bins (e.g. lo=0, hi=1, bins=3 with v=Nextafter(1, 0) gives
	// index 3), which used to panic with an out-of-range write. The
	// observation must land in the last bucket instead.
	combos := []struct {
		lo, hi float64
		bins   int
	}{
		{0, 1, 3}, // known to round up: int((Nextafter(1,0)-0)/(1.0/3)) == 3
		{0, 1, 7},
		{0, 1, 10},
		{0, 0.7, 7},
		{0.1, 0.9, 8},
		{-3, 3, 13},
	}
	for _, c := range combos {
		h := NewHistogram(c.lo, c.hi, c.bins)
		v := math.Nextafter(c.hi, c.lo)
		h.Observe(v) // must not panic
		_, counts := h.Bins()
		if counts[c.bins-1] != 1 {
			t.Errorf("lo=%v hi=%v bins=%d: Observe(%v) not in last bucket: %v",
				c.lo, c.hi, c.bins, v, counts)
		}
		if under, over := h.OutOfRange(); under != 0 || over != 0 {
			t.Errorf("lo=%v hi=%v bins=%d: in-range value tallied out of range (%d/%d)",
				c.lo, c.hi, c.bins, under, over)
		}
	}
}

func TestHistogramStddev(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	// Sample stddev of this classic set is ~2.138.
	if got := h.Stddev(); math.Abs(got-2.1380899352993947) > 1e-9 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Observe(1)
	h.Observe(2)
	h.Observe(7)
	s := h.Render(20)
	if !strings.Contains(s, "#") || len(strings.Split(strings.TrimSpace(s), "\n")) != 2 {
		t.Errorf("Render output unexpected:\n%s", s)
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf, bound := Autocorrelation(xs, 20)
	if len(acf) != 20 {
		t.Fatalf("acf length %d", len(acf))
	}
	if math.Abs(bound-1.96/math.Sqrt(5000)) > 1e-12 {
		t.Errorf("bound = %v", bound)
	}
	// Nearly all lags should sit inside the white-noise band.
	var outside int
	for _, r := range acf {
		if math.Abs(r) > bound {
			outside++
		}
	}
	if outside > 3 {
		t.Errorf("%d of 20 lags outside the white-noise band", outside)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with φ=0.8: acf(lag) ≈ 0.8^lag.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + rng.NormFloat64()
	}
	acf, _ := Autocorrelation(xs, 5)
	for lag := 1; lag <= 5; lag++ {
		want := math.Pow(0.8, float64(lag))
		if math.Abs(acf[lag-1]-want) > 0.05 {
			t.Errorf("acf(%d) = %v, want ≈%v", lag, acf[lag-1], want)
		}
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if acf, _ := Autocorrelation(nil, 5); acf != nil {
		t.Error("nil input should give nil acf")
	}
	if acf, _ := Autocorrelation([]float64{1}, 5); acf != nil {
		t.Error("single point should give nil acf")
	}
	// Constant series: zero denominator handled.
	acf, _ := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	for _, r := range acf {
		if r != 0 {
			t.Errorf("constant series acf = %v", acf)
		}
	}
	// maxLag clamped to n-1.
	acf, _ = Autocorrelation([]float64{1, 2, 3}, 100)
	if len(acf) != 2 {
		t.Errorf("clamped acf length = %d", len(acf))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestSlidingMean(t *testing.T) {
	xs := []float64{0, 0, 10, 0, 0}
	got := SlidingMean(xs, 3)
	want := []float64{0, 10.0 / 3, 10.0 / 3, 10.0 / 3, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("SlidingMean[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// window 1 = identity.
	got = SlidingMean(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("window-1 smoothing changed values")
		}
	}
	if got := SlidingMean(nil, 5); len(got) != 0 {
		t.Error("empty input")
	}
}

func TestSlidingMeanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	for _, w := range []int{2, 5, 11, 100} {
		got := SlidingMean(xs, w)
		half := w / 2
		for i := range xs {
			lo, hi := i-half, i+half+1
			if lo < 0 {
				lo = 0
			}
			if hi > len(xs) {
				hi = len(xs)
			}
			var sum float64
			for j := lo; j < hi; j++ {
				sum += xs[j]
			}
			want := sum / float64(hi-lo)
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("w=%d i=%d: %v vs %v", w, i, got[i], want)
			}
		}
	}
}

func TestWindowedWA(t *testing.T) {
	ingested := []int64{0, 100, 200, 300}
	written := []int64{0, 150, 250, 550}
	got := WindowedWA(ingested, written)
	want := []float64{1.5, 1.0, 3.0}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d: %v, want %v", i, got[i], want[i])
		}
	}
	if got := WindowedWA([]int64{1}, []int64{1}); got != nil {
		t.Error("too-short input should give nil")
	}
	// Zero-ingest window guarded.
	got = WindowedWA([]int64{0, 0}, []int64{0, 5})
	if got[0] != 0 {
		t.Errorf("zero-ingest window: %v", got)
	}
}
