// Package numeric provides the numerical machinery used by the write
// amplification models: adaptive quadrature, fixed-order Gauss–Legendre
// rules, root finding, and special functions (inverse normal CDF).
//
// The write-amplification models of the paper (Eq. 2 and Eq. 5) require
// integrating products of delay CDFs against a delay PDF over [0, ∞).
// Delay distributions in IoT workloads are heavy tailed (lognormal), so the
// integrators here split the domain at distribution quantiles supplied by
// the caller and refine adaptively inside each segment.
package numeric

import (
	"errors"
	"math"
)

// DefaultTol is the default absolute tolerance for adaptive quadrature.
const DefaultTol = 1e-9

// maxRecursionDepth bounds adaptive Simpson recursion; 2^50 subdivisions is
// far beyond any sensible integrand, so hitting it signals a pathological
// function rather than a precision need.
const maxRecursionDepth = 50

// ErrMaxDepth is reported when adaptive refinement hits its recursion bound
// before reaching the requested tolerance.
var ErrMaxDepth = errors.New("numeric: adaptive quadrature exceeded max depth")

// simpson returns the Simpson's-rule estimate of ∫f on [a,b] given the
// endpoint and midpoint values fa, fm, fb.
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// adaptiveSimpsonAux recursively refines the Simpson estimate whole on [a,b]
// until the two-panel refinement agrees within eps.
func adaptiveSimpsonAux(f func(float64) float64, a, b, eps, whole, fa, fm, fb float64, depth int) (float64, error) {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm := f(lm)
	frm := f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*eps || b-a < 1e-300 {
		return left + right + delta/15, nil
	}
	if depth >= maxRecursionDepth {
		return left + right + delta/15, ErrMaxDepth
	}
	l, errL := adaptiveSimpsonAux(f, a, m, eps/2, left, fa, flm, fm, depth+1)
	r, errR := adaptiveSimpsonAux(f, m, b, eps/2, right, fm, frm, fb, depth+1)
	if errL != nil {
		return l + r, errL
	}
	return l + r, errR
}

// AdaptiveSimpson integrates f over the finite interval [a, b] to absolute
// tolerance tol using adaptive Simpson quadrature. A non-positive tol
// selects DefaultTol. The returned error is ErrMaxDepth when refinement ran
// out of depth; the best available estimate is still returned.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	fa := f(a)
	fm := f((a + b) / 2)
	fb := f(b)
	whole := simpson(a, b, fa, fm, fb)
	v, err := adaptiveSimpsonAux(f, a, b, tol, whole, fa, fm, fb, 0)
	return sign * v, err
}

// IntegrateSegments integrates f over consecutive segments whose boundaries
// are given in ascending order, summing the per-segment adaptive Simpson
// results. Boundaries that repeat are skipped. It is the workhorse for
// integrating against heavy-tailed densities: callers pass quantiles of the
// density as boundaries so each segment is well behaved.
func IntegrateSegments(f func(float64) float64, boundaries []float64, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	var total float64
	var firstErr error
	for i := 1; i < len(boundaries); i++ {
		a, b := boundaries[i-1], boundaries[i]
		if !(b > a) {
			continue
		}
		v, err := AdaptiveSimpson(f, a, b, tol/float64(len(boundaries)))
		total += v
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// gauss-Legendre nodes and weights on [-1, 1], 20-point rule. Values from
// standard tables (Abramowitz & Stegun 25.4.30), symmetric about 0.
var (
	glNodes20 = []float64{
		0.0765265211334973, 0.2277858511416451, 0.3737060887154196,
		0.5108670019508271, 0.6360536807265150, 0.7463319064601508,
		0.8391169718222188, 0.9122344282513259, 0.9639719272779138,
		0.9931285991850949,
	}
	glWeights20 = []float64{
		0.1527533871307258, 0.1491729864726037, 0.1420961093183821,
		0.1316886384491766, 0.1181945319615184, 0.1019301198172404,
		0.0832767415767047, 0.0626720483341091, 0.0406014298003869,
		0.0176140071391521,
	}
)

// GaussLegendre20 integrates f over [a, b] with a single 20-point
// Gauss–Legendre rule. It is fast and very accurate for smooth integrands;
// use AdaptiveSimpson when smoothness is uncertain.
func GaussLegendre20(f func(float64) float64, a, b float64) float64 {
	c := (a + b) / 2
	h := (b - a) / 2
	var sum float64
	for i, x := range glNodes20 {
		w := glWeights20[i]
		sum += w * (f(c+h*x) + f(c-h*x))
	}
	return sum * h
}

// GaussLegendreSegments applies GaussLegendre20 on each consecutive pair of
// boundaries and sums the results, skipping empty or inverted segments.
func GaussLegendreSegments(f func(float64) float64, boundaries []float64) float64 {
	var total float64
	for i := 1; i < len(boundaries); i++ {
		a, b := boundaries[i-1], boundaries[i]
		if b > a {
			total += GaussLegendre20(f, a, b)
		}
	}
	return total
}

// gauss-Legendre nodes and weights on [-1, 1], 10-point rule.
var (
	glNodes10 = []float64{
		0.1488743389816312, 0.4333953941292472, 0.6794095682990244,
		0.8650633666889845, 0.9739065285171717,
	}
	glWeights10 = []float64{
		0.2955242247147529, 0.2692667193099963, 0.2190863625159820,
		0.1494513491505806, 0.0666713443086881,
	}
)

// GaussLegendreNodes10 appends the 10-point Gauss–Legendre nodes and
// weights for [a, b] to xs and ws. Preferred when the integrand is cheap to
// refine but evaluated for many outer iterations (the ζ model's sliding
// product), where node count dominates cost.
func GaussLegendreNodes10(a, b float64, xs, ws []float64) ([]float64, []float64) {
	c := (a + b) / 2
	h := (b - a) / 2
	for i, x := range glNodes10 {
		w := glWeights10[i] * h
		xs = append(xs, c+h*x, c-h*x)
		ws = append(ws, w, w)
	}
	return xs, ws
}

// GaussLegendreNodesSegments10 builds 10-point nodes and weights across
// consecutive boundary pairs, skipping degenerate segments.
func GaussLegendreNodesSegments10(boundaries []float64) (xs, ws []float64) {
	for i := 1; i < len(boundaries); i++ {
		a, b := boundaries[i-1], boundaries[i]
		if b > a {
			xs, ws = GaussLegendreNodes10(a, b, xs, ws)
		}
	}
	return xs, ws
}

// GaussLegendreNodes appends the 20-point Gauss–Legendre nodes and weights
// for the interval [a, b] to xs and ws. Callers that integrate many
// different functions against the same measure precompute the node set once
// (the ζ model evaluates a product integrand on fixed nodes for thousands
// of outer-sum terms).
func GaussLegendreNodes(a, b float64, xs, ws []float64) ([]float64, []float64) {
	c := (a + b) / 2
	h := (b - a) / 2
	for i, x := range glNodes20 {
		w := glWeights20[i] * h
		xs = append(xs, c+h*x, c-h*x)
		ws = append(ws, w, w)
	}
	return xs, ws
}

// GaussLegendreNodesSegments builds nodes and weights across consecutive
// boundary pairs, skipping degenerate segments.
func GaussLegendreNodesSegments(boundaries []float64) (xs, ws []float64) {
	for i := 1; i < len(boundaries); i++ {
		a, b := boundaries[i-1], boundaries[i]
		if b > a {
			xs, ws = GaussLegendreNodes(a, b, xs, ws)
		}
	}
	return xs, ws
}
