package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return x - 2 }, 0, 5, 2},
		{"quadratic", func(x float64) float64 { return x*x - 4 }, 0, 5, 2},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - 27 }, 0, 10, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Bisect(tc.f, tc.a, tc.b, 1e-10)
			if err != nil {
				t.Fatalf("Bisect error: %v", err)
			}
			if !almostEqual(got, tc.want, 1e-8) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got, err := Bisect(f, 0, 1, 1e-12); err != nil || got != 0 {
		t.Errorf("root at left endpoint: got %v, %v", got, err)
	}
	if got, err := Bisect(f, -1, 0, 1e-12); err != nil || got != 0 {
		t.Errorf("root at right endpoint: got %v, %v", got, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBrent(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 3*x - 9 }, 0, 10, 3},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"exp shifted", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 10, math.Log(5)},
		{"flat near root", func(x float64) float64 { return math.Pow(x-1, 3) }, 0, 4, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Brent(tc.f, tc.a, tc.b, 1e-12)
			if err != nil {
				t.Fatalf("Brent error: %v", err)
			}
			if !almostEqual(got, tc.want, 1e-7) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestSolveMonotone(t *testing.T) {
	// f(x) = x^2 on x >= 0; solve f(x) = 49 starting far from the answer.
	got, err := SolveMonotone(func(x float64) float64 { return x * x }, 49, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("SolveMonotone error: %v", err)
	}
	if !almostEqual(got, 7, 1e-8) {
		t.Errorf("got %v, want 7", got)
	}
}

func TestSolveMonotoneExpandsDown(t *testing.T) {
	got, err := SolveMonotone(func(x float64) float64 { return x }, -100, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("SolveMonotone error: %v", err)
	}
	if !almostEqual(got, -100, 1e-6) {
		t.Errorf("got %v, want -100", got)
	}
}

func TestSolveMonotoneProperty(t *testing.T) {
	// Property: for the strictly increasing f(x) = x + atan(x), SolveMonotone
	// inverts f at arbitrary targets.
	f := func(x float64) float64 { return x + math.Atan(x) }
	prop := func(target float64) bool {
		target = math.Mod(target, 1000)
		if math.IsNaN(target) {
			return true
		}
		x, err := SolveMonotone(f, target, 0, 1, 1e-12)
		if err != nil {
			return false
		}
		return almostEqual(f(x), target, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
