package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestAdaptiveSimpsonPolynomial(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 2, 6},
		{"linear", func(x float64) float64 { return x }, 0, 4, 8},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 3, 9},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 1, 0},
		{"quartic", func(x float64) float64 { return x * x * x * x }, 0, 1, 0.2},
		{"sin over period", math.Sin, 0, 2 * math.Pi, 0},
		{"sin half period", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := AdaptiveSimpson(tc.f, tc.a, tc.b, 1e-10)
			if err != nil {
				t.Fatalf("AdaptiveSimpson error: %v", err)
			}
			if !almostEqual(got, tc.want, 1e-8) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAdaptiveSimpsonReversedInterval(t *testing.T) {
	got, err := AdaptiveSimpson(func(x float64) float64 { return x }, 4, 0, 1e-10)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if !almostEqual(got, -8, 1e-8) {
		t.Errorf("reversed interval: got %v, want -8", got)
	}
}

func TestAdaptiveSimpsonEmptyInterval(t *testing.T) {
	got, err := AdaptiveSimpson(math.Exp, 1, 1, 1e-10)
	if err != nil || got != 0 {
		t.Errorf("empty interval: got %v, %v; want 0, nil", got, err)
	}
}

func TestAdaptiveSimpsonPeakedIntegrand(t *testing.T) {
	// Narrow Gaussian centered at 5: ∫ ≈ 1 over a wide interval.
	sigma := 0.01
	f := func(x float64) float64 {
		z := (x - 5) / sigma
		return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
	}
	got, err := AdaptiveSimpson(f, 0, 10, 1e-10)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if !almostEqual(got, 1, 1e-6) {
		t.Errorf("peaked integrand: got %v, want 1", got)
	}
}

func TestIntegrateSegments(t *testing.T) {
	got, err := IntegrateSegments(math.Exp, []float64{0, 0.25, 0.5, 0.5, 1}, 1e-10)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if !almostEqual(got, math.E-1, 1e-8) {
		t.Errorf("got %v, want %v", got, math.E-1)
	}
}

func TestIntegrateSegmentsSkipsInverted(t *testing.T) {
	got, err := IntegrateSegments(func(x float64) float64 { return 1 }, []float64{0, 2, 1, 3}, 1e-10)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	// Segments: [0,2] counted, [2,1] skipped, [1,3] counted -> 2 + 2 = 4.
	if !almostEqual(got, 4, 1e-8) {
		t.Errorf("got %v, want 4", got)
	}
}

func TestGaussLegendre20Smooth(t *testing.T) {
	got := GaussLegendre20(math.Exp, 0, 1)
	if !almostEqual(got, math.E-1, 1e-12) {
		t.Errorf("exp: got %v, want %v", got, math.E-1)
	}
	got = GaussLegendre20(func(x float64) float64 { return math.Cos(x) }, 0, math.Pi/2)
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("cos: got %v, want 1", got)
	}
}

func TestGaussLegendreSegments(t *testing.T) {
	got := GaussLegendreSegments(math.Exp, []float64{0, 0.3, 1})
	if !almostEqual(got, math.E-1, 1e-12) {
		t.Errorf("got %v, want %v", got, math.E-1)
	}
}

func TestQuadratureAgreement(t *testing.T) {
	// Property: adaptive Simpson and Gauss-Legendre agree on random smooth
	// integrands (polynomials with bounded coefficients).
	f := func(c0, c1, c2, c3 float64) bool {
		c0 = math.Mod(c0, 10)
		c1 = math.Mod(c1, 10)
		c2 = math.Mod(c2, 10)
		c3 = math.Mod(c3, 10)
		if math.IsNaN(c0 + c1 + c2 + c3) {
			return true
		}
		p := func(x float64) float64 { return c0 + x*(c1+x*(c2+x*c3)) }
		a, err := AdaptiveSimpson(p, -2, 3, 1e-10)
		if err != nil {
			return false
		}
		g := GaussLegendre20(p, -2, 3)
		return almostEqual(a, g, 1e-6*math.Max(1, math.Abs(g)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGaussLegendreNodesIntegrate(t *testing.T) {
	// Summing w_i * f(x_i) over the node set must reproduce the integral.
	xs, ws := GaussLegendreNodes(0, 1, nil, nil)
	if len(xs) != 20 || len(ws) != 20 {
		t.Fatalf("node count: %d, %d", len(xs), len(ws))
	}
	var sum float64
	for i := range xs {
		sum += ws[i] * math.Exp(xs[i])
	}
	if !almostEqual(sum, math.E-1, 1e-12) {
		t.Errorf("node-sum integral = %v, want %v", sum, math.E-1)
	}
}

func TestGaussLegendreNodes10Integrate(t *testing.T) {
	xs, ws := GaussLegendreNodes10(0, math.Pi/2, nil, nil)
	if len(xs) != 10 {
		t.Fatalf("node count: %d", len(xs))
	}
	var sum float64
	for i := range xs {
		sum += ws[i] * math.Cos(xs[i])
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("10-point node-sum = %v, want 1", sum)
	}
}

func TestGaussLegendreNodesSegments(t *testing.T) {
	for _, mk := range []func([]float64) ([]float64, []float64){
		GaussLegendreNodesSegments,
		GaussLegendreNodesSegments10,
	} {
		xs, ws := mk([]float64{0, 0.5, 0.5, 2}) // degenerate middle skipped
		var sum, wsum float64
		for i := range xs {
			sum += ws[i] * xs[i] // ∫ x dx over [0,2] = 2
			wsum += ws[i]
		}
		if !almostEqual(sum, 2, 1e-12) {
			t.Errorf("segments ∫x = %v", sum)
		}
		if !almostEqual(wsum, 2, 1e-12) {
			t.Errorf("weights sum = %v, want interval length 2", wsum)
		}
	}
}

func TestGaussLegendreNodesAppend(t *testing.T) {
	// Appending to existing slices must not clobber them.
	xs := []float64{-1}
	ws := []float64{-1}
	xs, ws = GaussLegendreNodes10(0, 1, xs, ws)
	if xs[0] != -1 || ws[0] != -1 || len(xs) != 11 {
		t.Errorf("append semantics broken: %v", xs[:2])
	}
}
