package numeric

import "math"

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function, computed via the complementary error function for accuracy in
// both tails.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns φ(x), the standard normal density.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// InvNormalCDF returns Φ⁻¹(p) using Wichura's algorithm AS241 (PPND16),
// accurate to about 1e-16 over (0, 1). It panics on p outside [0, 1];
// p == 0 and p == 1 return ∓Inf.
func InvNormalCDF(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		panic("numeric: InvNormalCDF requires p in [0,1]")
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		r := 0.180625 - q*q
		return q * rationalAS241(r, as241a[:], as241b[:])
	}
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var v float64
	if r <= 5 {
		r -= 1.6
		v = rationalAS241(r, as241c[:], as241d[:])
	} else {
		r -= 5
		v = rationalAS241(r, as241e[:], as241f[:])
	}
	if q < 0 {
		return -v
	}
	return v
}

// rationalAS241 evaluates the degree-7 rational approximation used by AS241
// with numerator coefficients num and denominator coefficients den.
func rationalAS241(r float64, num, den []float64) float64 {
	var n, d float64
	for i := len(num) - 1; i >= 0; i-- {
		n = n*r + num[i]
	}
	for i := len(den) - 1; i >= 0; i-- {
		d = d*r + den[i]
	}
	return n / d
}

// AS241 coefficient sets (Wichura 1988, PPND16).
var (
	as241a = [8]float64{
		3.3871328727963666080e0, 1.3314166789178437745e2,
		1.9715909503065514427e3, 1.3731693765509461125e4,
		4.5921953931549871457e4, 6.7265770927008700853e4,
		3.3430575583588128105e4, 2.5090809287301226727e3,
	}
	as241b = [8]float64{
		1.0, 4.2313330701600911252e1,
		6.8718700749205790830e2, 5.3941960214247511077e3,
		2.1213794301586595867e4, 3.9307895800092710610e4,
		2.8729085735721942674e4, 5.2264952788528545610e3,
	}
	as241c = [8]float64{
		1.42343711074968357734e0, 4.63033784615654529590e0,
		5.76949722146069140550e0, 3.64784832476320460504e0,
		1.27045825245236838258e0, 2.41780725177450611770e-1,
		2.27238449892691845833e-2, 7.74545014278341407640e-4,
	}
	as241d = [8]float64{
		1.0, 2.05319162663775882187e0,
		1.67638483018380384940e0, 6.89767334985100004550e-1,
		1.48103976427480074590e-1, 1.51986665636164571966e-2,
		5.47593808499534494600e-4, 1.05075007164441684324e-9,
	}
	as241e = [8]float64{
		6.65790464350110377720e0, 5.46378491116411436990e0,
		1.78482653991729133580e0, 2.96560571828504891230e-1,
		2.65321895265761230930e-2, 1.24266094738807843860e-3,
		2.71155556874348757815e-5, 2.01033439929228813265e-7,
	}
	as241f = [8]float64{
		1.0, 5.99832206555887937690e-1,
		1.36929880922735805310e-1, 1.48753612908506148525e-2,
		7.86869131145613259100e-4, 1.84631831751005468180e-5,
		1.42151175831644588870e-7, 2.04426310338993978564e-15,
	}
)

// KahanSum accumulates floating point values with compensated (Kahan)
// summation, limiting round-off when summing long series of small terms
// such as the tail of the subsequent-point model.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanSum) Value() float64 { return k.sum }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
