package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget before meeting the tolerance.
var ErrNoConverge = errors.New("numeric: root finding did not converge")

// Bisect finds a root of f in [a, b] by bisection to absolute x-tolerance
// tol. f(a) and f(b) must have opposite signs (zero endpoints are returned
// immediately).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, ErrNoConverge
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). It converges superlinearly for
// smooth f and never leaves the bracket.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant method.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// SolveMonotone finds x with f(x) = target for a nondecreasing f, expanding
// the search interval geometrically from [lo, hi] until the target is
// bracketed, then applying Brent. It is used to invert CDFs and the
// cumulative in-order-count function of the g model.
func SolveMonotone(f func(float64) float64, target, lo, hi, tol float64) (float64, error) {
	if hi <= lo {
		hi = lo + 1
	}
	g := func(x float64) float64 { return f(x) - target }
	// Expand upward until g(hi) >= 0.
	for i := 0; g(hi) < 0; i++ {
		if i >= 200 {
			return 0, ErrNoBracket
		}
		lo = hi
		hi *= 2
		if hi > math.MaxFloat64/4 {
			return 0, ErrNoBracket
		}
	}
	// Expand downward until g(lo) <= 0.
	for i := 0; g(lo) > 0; i++ {
		if i >= 200 {
			return 0, ErrNoBracket
		}
		hi = lo
		if lo > 0 {
			lo /= 2
		} else if lo == 0 {
			lo = -1
		} else {
			lo *= 2
		}
		if lo < -math.MaxFloat64/4 {
			return 0, ErrNoBracket
		}
	}
	return Brent(g, lo, hi, tol)
}
