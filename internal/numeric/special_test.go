package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
		{-6, 9.865876450376946e-10},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalPDFKnownValues(t *testing.T) {
	if got := NormalPDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Errorf("NormalPDF(0) = %v", got)
	}
	if got := NormalPDF(1); !almostEqual(got, 0.24197072451914337, 1e-15) {
		t.Errorf("NormalPDF(1) = %v", got)
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// ∫_{-8}^{x} φ = Φ(x) for a few x.
	for _, x := range []float64{-2, -0.5, 0, 0.7, 2.5} {
		got, err := AdaptiveSimpson(NormalPDF, -8, x, 1e-12)
		if err != nil {
			t.Fatalf("integrate: %v", err)
		}
		if !almostEqual(got, NormalCDF(x), 1e-9) {
			t.Errorf("∫φ to %v = %v, want %v", x, got, NormalCDF(x))
		}
	}
}

func TestInvNormalCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-5, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-5, 1 - 1e-10} {
		x := InvNormalCDF(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-12*math.Max(1, 1/p)) {
			t.Errorf("NormalCDF(InvNormalCDF(%v)) = %v", p, got)
		}
	}
}

func TestInvNormalCDFEdges(t *testing.T) {
	if !math.IsInf(InvNormalCDF(0), -1) {
		t.Error("InvNormalCDF(0) should be -Inf")
	}
	if !math.IsInf(InvNormalCDF(1), 1) {
		t.Error("InvNormalCDF(1) should be +Inf")
	}
	if got := InvNormalCDF(0.5); got != 0 {
		t.Errorf("InvNormalCDF(0.5) = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("InvNormalCDF(-0.1) should panic")
		}
	}()
	InvNormalCDF(-0.1)
}

func TestInvNormalCDFProperty(t *testing.T) {
	prop := func(u uint32) bool {
		p := (float64(u) + 0.5) / (float64(math.MaxUint32) + 1)
		x := InvNormalCDF(p)
		return almostEqual(NormalCDF(x), p, 1e-10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	// Sum 1 + 1e-16 * 1e6 naive would lose the small terms entirely.
	k.Add(1)
	for i := 0; i < 1000000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-10
	if !almostEqual(k.Value(), want, 1e-14) {
		t.Errorf("KahanSum = %.18f, want %.18f", k.Value(), want)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tc := range tests {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}
