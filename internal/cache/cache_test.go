package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetAndLRUEviction(t *testing.T) {
	c := New(100) // single shard (below minShardCapacity)
	if len(c.shards) != 1 {
		t.Fatalf("small cache should use 1 shard, got %d", len(c.shards))
	}
	o := c.NewOwner()
	c.Put(Key{o, 0}, "a", 40)
	c.Put(Key{o, 1}, "b", 40)
	if v, ok := c.Get(Key{o, 0}); !ok || v.(string) != "a" {
		t.Fatalf("Get(0) = %v, %v", v, ok)
	}
	// Inserting a third 40-byte entry must evict the LRU, which is block 1
	// (block 0 was touched above).
	c.Put(Key{o, 2}, "c", 40)
	if _, ok := c.Get(Key{o, 1}); ok {
		t.Fatal("block 1 should have been evicted")
	}
	if _, ok := c.Get(Key{o, 0}); !ok {
		t.Fatal("block 0 should have survived (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("Bytes/Entries = %d/%d, want 80/2", st.Bytes, st.Entries)
	}
}

func TestHitsPlusMissesEqualsRequests(t *testing.T) {
	c := New(1 << 20)
	o := c.NewOwner()
	requests := 0
	for i := 0; i < 100; i++ {
		k := Key{o, uint32(i % 10)}
		if _, ok := c.Get(k); !ok {
			c.Put(k, i, 100)
		}
		requests++
	}
	st := c.Stats()
	if st.Hits+st.Misses != int64(requests) {
		t.Fatalf("hits(%d)+misses(%d) != requests(%d)", st.Hits, st.Misses, requests)
	}
	if st.Misses != 10 || st.Hits != 90 {
		t.Fatalf("hits/misses = %d/%d, want 90/10", st.Hits, st.Misses)
	}
}

func TestOversizeValueNotStored(t *testing.T) {
	c := New(100)
	o := c.NewOwner()
	c.Put(Key{o, 0}, "huge", 101)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversize value was stored: %+v", st)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	o := c.NewOwner()
	c.Put(Key{o, 0}, "x", 1)
	if _, ok := c.Get(Key{o, 0}); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestEvictOwner(t *testing.T) {
	c := New(4 << 20) // multiple shards
	if len(c.shards) < 2 {
		t.Fatalf("expected sharded cache, got %d shards", len(c.shards))
	}
	o1, o2 := c.NewOwner(), c.NewOwner()
	for i := uint32(0); i < 64; i++ {
		c.Put(Key{o1, i}, i, 1000)
		c.Put(Key{o2, i}, i, 1000)
	}
	c.EvictOwner(o1)
	for i := uint32(0); i < 64; i++ {
		if _, ok := c.Get(Key{o1, i}); ok {
			t.Fatalf("owner 1 block %d survived EvictOwner", i)
		}
		if _, ok := c.Get(Key{o2, i}); !ok {
			t.Fatalf("owner 2 block %d was wrongly evicted", i)
		}
	}
	owners := c.Owners()
	if len(owners) != 1 || owners[0] != o2 {
		t.Fatalf("Owners() = %v, want [%d]", owners, o2)
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := New(1000)
	o := c.NewOwner()
	c.Put(Key{o, 0}, "a", 100)
	c.Put(Key{o, 0}, "b", 300)
	st := c.Stats()
	if st.Bytes != 300 || st.Entries != 1 {
		t.Fatalf("Bytes/Entries = %d/%d, want 300/1", st.Bytes, st.Entries)
	}
	if v, _ := c.Get(Key{o, 0}); v.(string) != "b" {
		t.Fatalf("value not replaced: %v", v)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o := c.NewOwner()
			for i := 0; i < 2000; i++ {
				k := Key{o, uint32(i % 50)}
				if v, ok := c.Get(k); ok {
					if v.(string) != fmt.Sprintf("%d-%d", o, i%50) {
						panic("wrong value for key")
					}
				} else {
					c.Put(k, fmt.Sprintf("%d-%d", o, i%50), 512)
				}
				if i%500 == 0 {
					c.EvictOwner(o)
				}
			}
			c.EvictOwner(o)
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("all owners evicted but cache not empty: %+v", st)
	}
}
