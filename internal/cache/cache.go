// Package cache provides the shared block cache behind lazy SSTable reads:
// a sharded LRU keyed by (owner, block index) with a byte-capacity budget.
// One Cache is shared by every series engine in a tsdb.DB, so the memory
// ceiling for paged reads is a single configurable number regardless of how
// many series or tables exist.
//
// Owners are table readers (one owner id per opened SSTable reader). When a
// compaction retires a table, its owner's entries are evicted so the cache
// cannot be polluted by blocks that can never be requested again.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cached block: the owning reader's id and the block's
// index inside its table.
type Key struct {
	Owner uint64
	Block uint32
}

// Stats is a point-in-time snapshot of the cache counters. Hits+Misses
// equals the number of Get calls, i.e. the number of blocks requested
// through the cache.
type Stats struct {
	// Hits counts Gets served from the cache.
	Hits int64
	// Misses counts Gets that found nothing.
	Misses int64
	// Evictions counts entries removed to make room or by owner eviction.
	Evictions int64
	// Inserts counts Puts that stored an entry.
	Inserts int64
	// Bytes is the current charged size of all resident entries.
	Bytes int64
	// Entries is the current number of resident entries.
	Entries int
}

// entry is one resident block.
type entry struct {
	key  Key
	val  any
	size int64
}

// shard is one independently locked LRU.
type shard struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
}

// Cache is a sharded LRU block cache, safe for concurrent use.
type Cache struct {
	shards    []*shard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	inserts   atomic.Int64
	nextOwner atomic.Uint64
}

// minShardCapacity is the smallest per-shard budget worth splitting into:
// below it a single shard is used so tiny caches (tests run with
// one-block capacities) still behave like a strict LRU.
const minShardCapacity = 64 << 10

// New returns a cache bounded by capacity bytes. A non-positive capacity
// yields a cache that stores nothing (every Get is a miss), which keeps
// callers free of nil checks when caching is disabled.
func New(capacity int64) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	for n < 16 && capacity/int64(n*2) >= minShardCapacity {
		n *= 2
	}
	c := &Cache{shards: make([]*shard, n)}
	per := capacity / int64(n)
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[Key]*list.Element),
		}
	}
	return c
}

// NewOwner allocates a fresh owner id, unique for the cache's lifetime.
// Each opened SSTable reader takes one so its blocks are addressable (and
// evictable) as a group.
func (c *Cache) NewOwner() uint64 { return c.nextOwner.Add(1) }

// shardFor picks the shard for a key.
func (c *Cache) shardFor(k Key) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	// Fibonacci hash over the owner/block pair; shard count is a power of 2.
	h := (k.Owner*0x9E3779B97F4A7C15 + uint64(k.Block)*0xBF58476D1CE4E5B9) >> 32
	return c.shards[h&uint64(len(c.shards)-1)]
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*entry).val, true
}

// Put stores v under k with the given charged size, evicting least
// recently used entries until the shard fits its budget. Values larger
// than the shard budget are not stored at all. Re-putting an existing key
// replaces its value and size.
func (c *Cache) Put(k Key, v any, size int64) {
	s := c.shardFor(k)
	if size <= 0 {
		size = 1
	}
	s.mu.Lock()
	if size > s.capacity { // under s.mu: SetCapacity may resize concurrently
		s.mu.Unlock()
		return
	}
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.val, e.size = v, size
		s.ll.MoveToFront(el)
	} else {
		s.items[k] = s.ll.PushFront(&entry{key: k, val: v, size: size})
		s.bytes += size
		c.inserts.Add(1)
	}
	var evicted int64
	for s.bytes > s.capacity {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// EvictOwner removes every entry belonging to owner, in all shards. Called
// when a table is retired (compaction or retention) or its engine closes,
// so dead tables cannot occupy cache capacity.
func (c *Cache) EvictOwner(owner uint64) {
	var evicted int64
	for _, s := range c.shards {
		s.mu.Lock()
		for k, el := range s.items {
			if k.Owner != owner {
				continue
			}
			e := el.Value.(*entry)
			s.ll.Remove(el)
			delete(s.items, k)
			s.bytes -= e.size
			evicted++
		}
		s.mu.Unlock()
	}
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// SetCapacity re-divides a new total byte budget across the existing
// shards, evicting least-recently-used entries from any shard now over its
// slice. The shard count is fixed at construction — the memory arbiter
// resizes the budget at runtime, it does not re-hash resident entries.
func (c *Cache) SetCapacity(capacity int64) {
	if capacity < 0 {
		capacity = 0
	}
	per := capacity / int64(len(c.shards))
	var evicted int64
	for _, s := range c.shards {
		s.mu.Lock()
		s.capacity = per
		for s.bytes > s.capacity {
			back := s.ll.Back()
			if back == nil {
				break
			}
			e := back.Value.(*entry)
			s.ll.Remove(back)
			delete(s.items, e.key)
			s.bytes -= e.size
			evicted++
		}
		s.mu.Unlock()
	}
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Capacity returns the total byte budget across shards.
func (c *Cache) Capacity() int64 {
	var total int64
	for _, s := range c.shards {
		total += s.capacity
	}
	return total
}

// Stats returns a snapshot of the counters and current occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Inserts:   c.inserts.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}

// Owners returns the distinct owner ids with at least one resident entry,
// in no particular order. Used by leak tests to assert retired tables left
// nothing behind.
func (c *Cache) Owners() []uint64 {
	seen := make(map[uint64]bool)
	for _, s := range c.shards {
		s.mu.Lock()
		for k := range s.items {
			seen[k.Owner] = true
		}
		s.mu.Unlock()
	}
	out := make([]uint64, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	return out
}
