// Package bloom implements a split-block-free classic Bloom filter over
// 64-bit keys. SSTables embed one filter per table so point lookups by
// generation timestamp can skip tables that certainly do not contain the
// key, mirroring the SSTable filters of LevelDB-lineage engines.
package bloom

import (
	"math"

	"repro/internal/encoding"
)

// Filter is a Bloom filter over uint64 keys. The zero value is unusable;
// construct with New or Decode.
type Filter struct {
	bits []uint64
	k    uint32 // number of probes
	m    uint64 // number of bits
}

// New creates a filter sized for expectedKeys at the given false positive
// rate (clamped to [1e-6, 0.5]). expectedKeys below 1 is treated as 1.
func New(expectedKeys int, fpRate float64) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if fpRate < 1e-6 {
		fpRate = 1e-6
	}
	if fpRate > 0.5 {
		fpRate = 0.5
	}
	// Optimal bits per key: -ln(p)/ln(2)^2; probes: bits/key * ln2.
	bitsPerKey := -math.Log(fpRate) / (math.Ln2 * math.Ln2)
	m := uint64(math.Ceil(bitsPerKey * float64(expectedKeys)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(bitsPerKey * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		k:    k,
		m:    m,
	}
}

// mix64 is the splitmix64 finalizer, a strong 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probes derives the k bit positions for key using double hashing.
func (f *Filter) probe(key uint64, i uint32) uint64 {
	h1 := mix64(key)
	h2 := mix64(key ^ 0x9e3779b97f4a7c15)
	return (h1 + uint64(i)*h2) % f.m
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	for i := uint32(0); i < f.k; i++ {
		p := f.probe(key, i)
		f.bits[p/64] |= 1 << (p % 64)
	}
}

// MayContain reports whether key may be in the filter. False means the key
// was definitely never added.
func (f *Filter) MayContain(key uint64) bool {
	for i := uint32(0); i < f.k; i++ {
		p := f.probe(key, i)
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the in-memory size of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Encode appends a portable serialization of the filter to dst.
func (f *Filter) Encode(dst []byte) []byte {
	dst = encoding.PutUvarint(dst, uint64(f.k))
	dst = encoding.PutUvarint(dst, f.m)
	dst = encoding.PutUvarint(dst, uint64(len(f.bits)))
	for _, w := range f.bits {
		dst = encoding.PutUint64(dst, w)
	}
	return dst
}

// Decode reconstructs a filter from the serialization produced by Encode,
// returning the filter and the number of bytes consumed.
func Decode(src []byte) (*Filter, int, error) {
	off := 0
	k, n, err := encoding.Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	off += n
	m, n, err := encoding.Uvarint(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	words, n, err := encoding.Uvarint(src[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	// Each word takes 8 bytes; a word count exceeding the remaining input
	// is malformed, and rejecting it here bounds the allocation below.
	if words > uint64(len(src)-off)/8 {
		return nil, 0, encoding.ErrShortBuffer
	}
	bits := make([]uint64, words)
	for i := range bits {
		w, n, err := encoding.Uint64(src[off:])
		if err != nil {
			return nil, 0, err
		}
		bits[i] = w
		off += n
	}
	return &Filter{bits: bits, k: uint32(k), m: m}, off, nil
}
