package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.Add(i * 7919)
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.MayContain(i * 7919) {
			t.Fatalf("false negative for key %d", i*7919)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	f := New(n, 0.01)
	rng := rand.New(rand.NewSource(5))
	added := make(map[uint64]bool, n)
	for len(added) < n {
		k := rng.Uint64()
		added[k] = true
		f.Add(k)
	}
	var fp, trials int
	for trials < 100000 {
		k := rng.Uint64()
		if added[k] {
			continue
		}
		trials++
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.03 {
		t.Errorf("false positive rate %v, want <= ~0.01 (3x slack)", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	for i := uint64(0); i < 1000; i++ {
		if f.MayContain(i) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := New(500, 0.005)
	for i := uint64(0); i < 500; i++ {
		f.Add(i * i)
	}
	buf := f.Encode(nil)
	g, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("decode consumed %d of %d bytes", n, len(buf))
	}
	for i := uint64(0); i < 500; i++ {
		if !g.MayContain(i * i) {
			t.Fatalf("decoded filter lost key %d", i*i)
		}
	}
	if g.SizeBytes() != f.SizeBytes() {
		t.Errorf("size mismatch: %d vs %d", g.SizeBytes(), f.SizeBytes())
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	f := New(10, 0.01)
	f.Add(42)
	buf := f.Encode(nil)
	for cut := 0; cut < len(buf); cut += 3 {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("decode of %d-byte prefix should fail", cut)
		}
	}
}

func TestParameterClamping(t *testing.T) {
	// Degenerate parameters must still produce a working filter.
	for _, f := range []*Filter{New(0, 0.01), New(10, 0), New(10, 0.99)} {
		f.Add(123)
		if !f.MayContain(123) {
			t.Error("clamped filter dropped its key")
		}
	}
}

func TestPropertyAddedAlwaysFound(t *testing.T) {
	f := New(200, 0.01)
	var keys []uint64
	prop := func(k uint64) bool {
		f.Add(k)
		keys = append(keys, k)
		for _, kk := range keys {
			if !f.MayContain(kk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
