package experiments

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

// Fig7 reproduces Figure 7: write amplification under π_c (flat line) and
// under π_s as a function of n_seq (U-shaped curve), model versus
// measurement, for lognormal(μ=5, σ=2) delays, Δt = 50, memory budget
// n = 512 and 512-point SSTables.
func Fig7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "fig7",
		Title:  "WA vs n_seq: pi_c line and pi_s U-curve, model vs measurement",
		Header: []string{"config", "measured WA", "model WA"},
	}
	rep.AddNote("delays ~ lognormal(mu=5, sigma=2), dt=50, n=512, SSTable=512 points")

	const n = 512
	const dt = 50
	d := dist.NewLognormal(5, 2)
	nPoints := cfg.points(2_000_000, 150_000)
	ps := workload.Synthetic(nPoints, dt, d, cfg.Seed)

	waC, _, err := measuredWA(lsm.Conventional, n, 0, n, ps)
	if err != nil {
		return nil, err
	}
	rep.AddRow("pi_c", f(waC), f(core.WAConventional(d, dt, n)))

	sweep := []int{32, 64, 96, 128, 192, 256, 320, 384, 448, 480}
	if cfg.Quick {
		sweep = []int{64, 256, 448}
	}
	for _, nseq := range sweep {
		waS, _, err := measuredWA(lsm.Separation, n, nseq, n, ps)
		if err != nil {
			return nil, err
		}
		est := core.WASeparationOpts(d, dt, n, nseq, core.ZetaOpts{SwitchEps: 1e-2})
		rep.AddRow("pi_s(nseq="+d2(nseq)+")", f(waS), f(est.WA))
	}
	rep.AddNote("expected shape: r_s is U-shaped in n_seq; model tracks measurement (model slightly low, gap < 1: whole-SSTable rewrites)")
	return rep, nil
}

// d2 formats an int (avoids clashing with the d() helper's shadowing in
// closures).
func d2(v int) string { return d(v) }
