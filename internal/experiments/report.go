// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V and VI). Each experiment returns a Report — a
// titled table with notes — that cmd/lsmbench renders to the terminal or
// CSV. DESIGN.md §4 maps experiment IDs to paper figures.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies the paper's dataset sizes (the synthetic datasets
	// have 10M points at Scale 1). Default 0.05.
	Scale float64
	// Seed drives every generator in the experiment.
	Seed int64
	// Quick trims sweeps to a handful of points for smoke tests and
	// benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// points scales a paper-sized point count, with a floor to keep the
// experiment meaningful.
func (c Config) points(paperSize, minimum int) int {
	n := int(float64(paperSize) * c.Scale)
	if n < minimum {
		n = minimum
	}
	return n
}

// Report is one experiment's output table.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note rendered under the title.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	if len(r.Header) == 0 && len(r.Rows) == 0 {
		fmt.Fprintln(w)
		return
	}
	widths := make([]int, 0)
	measure := func(cells []string) {
		for i, c := range cells {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(r.Header)
	for _, row := range r.Rows {
		measure(row)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(r.Header) > 0 {
		writeRow(r.Header)
		total := len(widths) - 1
		for _, wd := range widths {
			total += wd + 1
		}
		fmt.Fprintln(w, strings.Repeat("-", total))
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the header and rows as CSV.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(r.Header) > 0 {
		if err := cw.Write(r.Header); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float for table cells.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// d formats an integer.
func d(v int) string { return fmt.Sprintf("%d", v) }
