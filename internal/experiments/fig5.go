package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

// Fig5 reproduces Figure 5: the average number of subsequent data points
// per compaction, measured in the prototype versus predicted by ζ(n), for
// two lognormal delay distributions (μ=4, σ=1.5 and σ=1.75) at Δt = 50,
// across buffer capacities.
func Fig5(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:    "fig5",
		Title: "Subsequent data points: model zeta(n) vs prototype measurement",
		Header: []string{"buffer", "measured(s=1.5)", "model(s=1.5)",
			"measured(s=1.75)", "model(s=1.75)"},
	}
	rep.AddNote("delays ~ lognormal(mu=4, sigma), dt=50; scatter = mean subsequent points over all compactions")

	buffers := []int{64, 128, 192, 256, 320, 384, 448, 512}
	if cfg.Quick {
		buffers = []int{64, 256, 512}
	}
	sigmas := []float64{1.5, 1.75}
	n := cfg.points(2_000_000, 100_000)

	type cell struct{ measured, model float64 }
	results := make(map[float64]map[int]cell)
	for si, sigma := range sigmas {
		results[sigma] = make(map[int]cell)
		d := dist.NewLognormal(4, sigma)
		ps := workload.Synthetic(n, 50, d, cfg.Seed+int64(si))
		for _, buf := range buffers {
			e, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: buf, SSTablePoints: buf})
			if err != nil {
				return nil, err
			}
			var sum float64
			var count int
			e.OnCompaction = func(ci lsm.CompactionInfo) {
				sum += float64(ci.SubsequentPoints)
				count++
			}
			if err := e.PutBatch(ps); err != nil {
				return nil, err
			}
			e.Close()
			measured := 0.0
			if count > 0 {
				measured = sum / float64(count)
			}
			results[sigma][buf] = cell{measured: measured, model: core.Zeta(d, 50, buf)}
		}
	}
	for _, buf := range buffers {
		a := results[sigmas[0]][buf]
		b := results[sigmas[1]][buf]
		rep.AddRow(d(buf), f1(a.measured), f1(a.model), f1(b.measured), f1(b.model))
	}
	rep.AddNote(fmt.Sprintf("dataset size %d points per configuration", n))
	return rep, nil
}
