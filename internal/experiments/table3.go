package experiments

import (
	"fmt"
	"time"

	"repro/internal/lsm"
	"repro/internal/workload"
)

// Table3 reproduces Table III: write throughput (points/ms) under π_c and
// π_s(½n) on every synthetic dataset, with asynchronous (background)
// compaction as in the paper's Section V-C implementation, so ingestion is
// not blocked by merging and the two policies land close together.
func Table3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "table3",
		Title:  "Writing throughput (points/ms), pi_c vs pi_s(n/2), background compaction",
		Header: []string{"dataset", "pi_c", "pi_s"},
	}
	const n = 512
	nPoints := cfg.points(2_000_000, 100_000)
	specs := workload.TableII()
	if cfg.Quick {
		specs = specs[:2]
	}
	for si, spec := range specs {
		ps := spec.Generate(nPoints, cfg.Seed+200+int64(si))
		var rates [2]float64
		for pi, pol := range []lsm.PolicyKind{lsm.Conventional, lsm.Separation} {
			e, err := lsm.Open(lsm.Config{
				Policy:          pol,
				MemBudget:       n,
				SeqCapacity:     n / 2,
				SSTablePoints:   n,
				AsyncCompaction: true,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := e.PutBatch(ps); err != nil {
				e.Close()
				return nil, err
			}
			elapsed := time.Since(start)
			e.Close()
			rates[pi] = float64(len(ps)) / float64(elapsed.Milliseconds()+1)
		}
		rep.AddRow(spec.Name, fmt.Sprintf("%.0f", rates[0]), fmt.Sprintf("%.0f", rates[1]))
	}
	rep.AddNote("expected shape: no significant throughput difference between policies (compaction runs in the background)")
	return rep, nil
}
