package experiments

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/series"
	"repro/internal/workload"
)

// waOverTime ingests the stream into an engine (or through a controller)
// and records cumulative (ingested, written) at every checkpoint.
type ingester interface {
	Put(p series.Point) error
}

type statser interface {
	Stats() lsm.Stats
}

// traceWA runs the stream through sink, checkpointing engine stats every
// window points, and returns the windowed WA series.
func traceWA(sink ingester, st statser, ps []series.Point, window int) ([]float64, error) {
	var ingested, written []int64
	snap := func() {
		s := st.Stats()
		ingested = append(ingested, s.PointsIngested)
		written = append(written, s.PointsWritten)
	}
	snap()
	for i, p := range ps {
		if err := sink.Put(p); err != nil {
			return nil, err
		}
		if (i+1)%window == 0 {
			snap()
		}
	}
	snap()
	return metrics.WindowedWA(ingested, written), nil
}

// engineSink adapts an Engine to the ingester interface.
type engineSink struct{ e *lsm.Engine }

func (s engineSink) Put(p series.Point) error { return s.e.Put(p) }
func (s engineSink) Stats() lsm.Stats         { return s.e.Stats() }

// controllerSink adapts an AdaptiveController.
type controllerSink struct{ c *analyzer.AdaptiveController }

func (s controllerSink) Put(p series.Point) error { return s.c.Put(p) }
func (s controllerSink) Stats() lsm.Stats         { return s.c.Engine().Stats() }

// Fig10 reproduces Figure 10: write amplification over time under a
// drifting delay distribution (lognormal μ=5, σ: 2 → 1.75 → 1.5 → 1.25 →
// 1, Δt=50), comparing π_c, π_s(½n) (the untuned IoTDB default), and
// π_adaptive (the analyzer switching policies on drift).
func Fig10(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	return dynamicWAExperiment(cfg, "fig10",
		"WA over time under drifting sigma: pi_c vs pi_s(n/2) vs pi_adaptive",
		func(total int) []series.Point {
			return workload.DriftingSigma(total, 50, 5, []float64{2, 1.75, 1.5, 1.25, 1}, cfg.Seed)
		},
		"sigma drifts 2 -> 1.75 -> 1.5 -> 1.25 -> 1 every fifth of the stream (mu=5, dt=50)")
}

// dynamicWAExperiment is shared by Fig10 and Fig17.
func dynamicWAExperiment(cfg Config, id, title string, gen func(total int) []series.Point, note string) (*Report, error) {
	const n = 512
	total := cfg.points(25_000_000, 250_000)
	ps := gen(total)
	window := len(ps) / 25
	if window < 1 {
		window = 1
	}

	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"progress", "WA pi_c", "WA pi_s(n/2)", "WA pi_adaptive", "adaptive policy"},
	}
	rep.AddNote(note)
	rep.AddNote(fmt.Sprintf("%d points total, WA per window of %d points (sliding-mean smoothed)", len(ps), window))

	ec, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: n})
	if err != nil {
		return nil, err
	}
	defer ec.Close()
	es, err := lsm.Open(lsm.Config{Policy: lsm.Separation, MemBudget: n, SeqCapacity: n / 2})
	if err != nil {
		return nil, err
	}
	defer es.Close()
	ea, err := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: n})
	if err != nil {
		return nil, err
	}
	defer ea.Close()
	ctl, err := analyzer.NewAdaptiveController(ea, analyzer.AdaptiveConfig{
		MemBudget:   n,
		CheckEvery:  int64(window) / 2,
		MinSample:   2048,
		KSThreshold: 0.05,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	waC, err := traceWA(engineSink{ec}, engineSink{ec}, ps, window)
	if err != nil {
		return nil, err
	}
	waS, err := traceWA(engineSink{es}, engineSink{es}, ps, window)
	if err != nil {
		return nil, err
	}
	waA, err := traceWA(controllerSink{ctl}, controllerSink{ctl}, ps, window)
	if err != nil {
		return nil, err
	}

	waC = metrics.SlidingMean(waC, 3)
	waS = metrics.SlidingMean(waS, 3)
	waA = metrics.SlidingMean(waA, 3)

	switches := ctl.Switches()
	policyAt := func(points int64) string {
		label := "pi_c (warmup)"
		for _, sw := range switches {
			if sw.AtPoint <= points {
				label = sw.Decision.Policy.String()
				if sw.Decision.Policy.String() == "pi_s" {
					label = fmt.Sprintf("pi_s(%d)", sw.Decision.NSeq)
				}
			}
		}
		return label
	}
	rows := len(waC)
	for i := 0; i < rows; i++ {
		progress := fmt.Sprintf("%d%%", (i+1)*100/rows)
		var a, s, c float64
		c = waC[i]
		if i < len(waS) {
			s = waS[i]
		}
		if i < len(waA) {
			a = waA[i]
		}
		rep.AddRow(progress, f(c), f(s), f(a), policyAt(int64(i+1)*int64(window)))
	}
	rep.AddNote(fmt.Sprintf("adaptive controller performed %d policy decisions", len(switches)))
	rep.AddNote("expected shape: pi_adaptive tracks min(pi_c, pi_s) in each regime and switches as sigma falls")
	return rep, nil
}
