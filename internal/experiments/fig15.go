package experiments

import (
	"math/rand"

	"repro/internal/lsm"
	"repro/internal/workload"
)

// Fig15 reproduces the phenomenon illustrated in Figure 15: for the same
// queried generation-time range, the number of SSTables whose spans
// overlap it differs between the policies — π_c leaves more overlapping
// level-1 files around the queried period, while π_s's tables are smaller
// but (for historical ranges) fewer of them straddle the range. The
// experiment loads one dataset under each policy, samples random query
// ranges, and reports the overlap counts and span widths.
func Fig15(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:    "fig15",
		Title: "SSTable generation-time spans vs queried ranges",
		Header: []string{"policy", "sstables", "avg span (ms)",
			"avg overlapping (w=10000)", "avg overlapping (w=50000)"},
	}
	const n = 512
	spec, _ := workload.ByName("M6") // heavy disorder makes overlap visible
	ps := spec.Generate(cfg.points(2_000_000, 100_000), cfg.Seed+15)

	for _, pol := range []struct {
		kind   lsm.PolicyKind
		seqCap int
		label  string
	}{
		{lsm.Conventional, 0, "pi_c"},
		{lsm.Separation, n / 4, "pi_s(nseq=128)"},
	} {
		e, err := lsm.Open(lsm.Config{Policy: pol.kind, MemBudget: n, SeqCapacity: pol.seqCap, SSTablePoints: n})
		if err != nil {
			return nil, err
		}
		if err := e.PutBatch(ps); err != nil {
			e.Close()
			return nil, err
		}
		spans := e.TableSpans()
		maxTG, _ := e.MaxTG()
		e.Close()

		var spanSum float64
		for _, s := range spans {
			spanSum += float64(s.MaxTG - s.MinTG)
		}
		avgSpan := 0.0
		if len(spans) > 0 {
			avgSpan = spanSum / float64(len(spans))
		}

		rng := rand.New(rand.NewSource(cfg.Seed + 15))
		overlapsFor := func(w int64) float64 {
			const samples = 200
			var total int
			for q := 0; q < samples; q++ {
				span := maxTG - w
				if span < 1 {
					span = 1
				}
				lo := rng.Int63n(span)
				hi := lo + w
				for _, s := range spans {
					if s.MinTG <= hi && s.MaxTG >= lo {
						total++
					}
				}
			}
			return float64(total) / samples
		}
		rep.AddRow(pol.label, d(len(spans)), f1(avgSpan), f1(overlapsFor(10_000)), f1(overlapsFor(50_000)))
	}
	rep.AddNote("dataset M6 (lognormal mu=5 sigma=2, dt=50), n=512")
	rep.AddNote("expected shape: under pi_c individual SSTable spans stay wide (overlapping level-1 files share the queried period); under pi_s spans are narrower so a historical range intersects proportionally fewer points per file")
	return rep, nil
}
