package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/series"
)

// measuredWA ingests ps into a fresh engine with the given policy and
// returns the observed write amplification (steady state: buffered points
// that never flushed stay uncounted in the numerator, as in the paper's
// prototype).
func measuredWA(pol lsm.PolicyKind, memBudget, seqCap, sstPoints int, ps []series.Point) (float64, lsm.Stats, error) {
	e, err := lsm.Open(lsm.Config{
		Policy:        pol,
		MemBudget:     memBudget,
		SeqCapacity:   seqCap,
		SSTablePoints: sstPoints,
	})
	if err != nil {
		return 0, lsm.Stats{}, err
	}
	defer e.Close()
	if err := e.PutBatch(ps); err != nil {
		return 0, lsm.Stats{}, err
	}
	st := e.Stats()
	return st.WriteAmplification(), st, nil
}

// fitEmpirical builds the analyzer-style empirical profile (delay
// distribution and mean generation interval) from a point stream, exactly
// what the deployed module would see.
func fitEmpirical(ps []series.Point) (*dist.Empirical, float64) {
	delays := make([]float64, len(ps))
	var lastTG int64
	var gapSum float64
	var gapN int64
	first := true
	for i, p := range ps {
		dly := float64(p.Delay())
		if dly < 0 {
			dly = 0
		}
		delays[i] = dly
		if !first && p.TG > lastTG {
			gapSum += float64(p.TG - lastTG)
			gapN++
		}
		if first || p.TG > lastTG {
			lastTG = p.TG
		}
		first = false
	}
	dt := 1.0
	if gapN > 0 {
		dt = gapSum / float64(gapN)
	}
	return dist.NewEmpirical(delays), dt
}

// sensibleNSeq returns the recommended C_seq capacity clamped away from
// the degenerate edges: n_seq below n/16 means one-point in-order flushes
// (thousands of tiny SSTables) and n_seq above n−n/16 means per-point
// merges — WA-optimal in the model's eyes on nearly ordered data, but
// operationally absurd. The deployed system would fall back to the IoTDB
// default split.
func sensibleNSeq(dec core.Decision, n int) int {
	lo := n / 16
	if lo < 1 {
		lo = 1
	}
	hi := n - lo
	if dec.NSeq < lo || dec.NSeq > hi {
		return n / 2
	}
	return dec.NSeq
}

// policyLabel formats the policy column like the paper's notation.
func policyLabel(dec core.Decision, n int) string {
	if dec.Policy == core.PolicySeparation {
		return fmt.Sprintf("pi_s(nseq=%d)", dec.NSeq)
	}
	return fmt.Sprintf("pi_c(n=%d)", n)
}
