package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/series"
	"repro/internal/workload"
)

// Fig17 reproduces Figure 17: the delays do not follow any single
// parametric distribution — five different families alternate over time —
// and the dynamic determination still tracks the best policy.
func Fig17(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	families := []dist.Distribution{
		dist.NewLognormal(5, 2),
		dist.NewUniform(0, 2000),
		dist.NewExponential(1.0 / 800),
		dist.NewMixture(
			dist.Component{Weight: 0.9, Dist: dist.NewUniform(0, 50)},
			dist.Component{Weight: 0.1, Dist: dist.NewLognormal(7, 0.5)},
		),
		dist.NewUniform(0, 20),
	}
	return dynamicWAExperiment(cfg, "fig17",
		"WA over time with no fixed delay distribution: pi_c vs pi_s(n/2) vs pi_adaptive",
		func(total int) []series.Point {
			per := total / len(families)
			segs := make([]workload.Segment, len(families))
			for i, d := range families {
				segs[i] = workload.Segment{Points: per, Dist: d}
			}
			return workload.Dynamic(50, cfg.Seed+17, segs...)
		},
		"delay families per fifth: lognormal(5,2), uniform(0,2000), exp(1/800), 90/10 mixture, uniform(0,20); dt=50")
}

// Fig18 reproduces Figure 18: dataset S-9's generation intervals vary
// wildly (no fixed Δt), yet the WA estimation still ranks the policies
// correctly.
func Fig18(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	s9 := workload.DefaultS9()
	s9.Seed = cfg.Seed + 9
	ps := workload.S9Like(s9)

	rep := &Report{
		ID:     "fig18",
		Title:  "S-9 without a fixed generation interval: estimation still correct",
		Header: []string{"row", "value"},
	}

	// (a) the generation-interval spread, sorted as in the paper's plot.
	sorted := append([]series.Point(nil), ps...)
	series.SortByTG(sorted)
	intervals := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		intervals = append(intervals, float64(sorted[i].TG-sorted[i-1].TG))
	}
	sort.Float64s(intervals)
	q := func(p float64) float64 { return intervals[int(p*float64(len(intervals)-1))] }
	rep.AddRow("interval p1/p25/p50/p75/p99 (ms)",
		fmt.Sprintf("%.0f / %.0f / %.0f / %.0f / %.0f", q(0.01), q(0.25), q(0.5), q(0.75), q(0.99)))
	rep.AddRow("interval min/max (ms)", fmt.Sprintf("%.0f / %.0f", intervals[0], intervals[len(intervals)-1]))

	// (b) WA estimation vs truth with the analyzer's mean-interval
	// approximation.
	const n = 8
	prof, dt := fitEmpirical(ps)
	dec := core.Tune(prof, dt, n)
	waC, _, err := measuredWA(lsm.Conventional, n, 0, n, ps)
	if err != nil {
		return nil, err
	}
	nseq := dec.NSeq
	if nseq < 1 || nseq >= n {
		nseq = n / 2
	}
	waS, _, err := measuredWA(lsm.Separation, n, nseq, n, ps)
	if err != nil {
		return nil, err
	}
	rep.AddRow("mean interval used as dt (ms)", f1(dt))
	rep.AddRow("pi_c estimated / real WA", f(dec.Rc)+" / "+f(waC))
	rep.AddRow(fmt.Sprintf("pi_s(nseq=%d) estimated / real WA", nseq), f(dec.Rs)+" / "+f(waS))
	rep.AddRow("Algorithm 1 chooses", policyLabel(dec, n))
	rep.AddNote("expected shape: intervals vary by orders of magnitude, yet the estimation predicts pi_s < pi_c, matching the measurement")
	return rep, nil
}
