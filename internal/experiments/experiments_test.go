package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickCfg is a tiny configuration for smoke tests.
func quickCfg() Config {
	return Config{Scale: 0.004, Seed: 3, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	// Every paper table/figure with an evaluation artifact must be here.
	want := []string{"table2", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "table3", "fig16", "fig17", "fig18", "fig19", "fig20"}
	have := make(map[string]bool)
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	for _, id := range ids {
		if _, ok := Describe(id); !ok {
			t.Errorf("no description for %s", id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("no runner for %s", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are slow")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if rep.ID != id {
				t.Errorf("report ID %q != %q", rep.ID, id)
			}
			if len(rep.Rows) == 0 {
				t.Errorf("%s produced no rows", id)
			}
			var buf bytes.Buffer
			rep.Render(&buf)
			if buf.Len() == 0 {
				t.Errorf("%s rendered nothing", id)
			}
			var csv bytes.Buffer
			if err := rep.WriteCSV(&csv); err != nil {
				t.Errorf("%s CSV: %v", id, err)
			}
		})
	}
}

// cell parses a float cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig5ModelTracksMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep, err := Fig5(Config{Scale: 0.02, Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		measured := cell(t, row[1])
		model := cell(t, row[2])
		if measured <= 0 {
			t.Fatalf("buffer %s: no compactions measured", row[0])
		}
		// Model within 40% of measurement (the paper's scatter tolerance).
		if model < 0.6*measured || model > 1.4*measured {
			t.Errorf("buffer %s sigma=1.5: model %v vs measured %v", row[0], model, measured)
		}
	}
}

func TestFig7UShapeAndModelFit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep, err := Fig7(Config{Scale: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is pi_c; the rest sweep n_seq ascending.
	var sweep []float64
	var models []float64
	for _, row := range rep.Rows[1:] {
		sweep = append(sweep, cell(t, row[1]))
		models = append(models, cell(t, row[2]))
	}
	// U shape: the minimum is strictly inside the sweep.
	minI := 0
	for i, v := range sweep {
		if v < sweep[minI] {
			minI = i
		}
	}
	if minI == 0 || minI == len(sweep)-1 {
		t.Errorf("measured r_s minimum at sweep edge (index %d of %d): %v", minI, len(sweep), sweep)
	}
	// Model tracks measurement within 25% everywhere.
	for i := range sweep {
		if models[i] < 0.7*sweep[i] || models[i] > 1.3*sweep[i] {
			t.Errorf("row %d: model %v vs measured %v", i, models[i], sweep[i])
		}
	}
}

func TestTable2TwelveDatasets(t *testing.T) {
	rep, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 {
		t.Errorf("Table II rows = %d", len(rep.Rows))
	}
}

func TestFig11SeparationWins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep, err := Fig11(Config{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = pi_c, row 1 = pi_s: both estimated and real must rank
	// pi_s < pi_c (the paper's Fig. 11 outcome).
	estC, realC := cell(t, rep.Rows[0][1]), cell(t, rep.Rows[0][2])
	estS, realS := cell(t, rep.Rows[1][1]), cell(t, rep.Rows[1][2])
	if !(estS < estC) {
		t.Errorf("estimates: pi_s %v should beat pi_c %v", estS, estC)
	}
	if !(realS < realC) {
		t.Errorf("measurements: pi_s %v should beat pi_c %v", realS, realC)
	}
}

func TestFig16ConventionalWinsOnH(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep, err := Fig16(Config{Scale: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var choice string
	var exceed int
	for _, row := range rep.Rows {
		if row[0] == "Algorithm 1 chooses" {
			choice = row[1]
		}
		if row[0] == "lags beyond bound (of 10)" {
			exceed = int(cell(t, row[1]))
		}
	}
	if !strings.HasPrefix(choice, "pi_c") {
		t.Errorf("on H the analyzer must choose pi_c, got %q", choice)
	}
	if exceed < 5 {
		t.Errorf("H delays should be strongly autocorrelated; only %d lags beyond bound", exceed)
	}
}
