package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/workload"
)

// queryRun holds the query measurements for one dataset under one policy.
type queryRun struct {
	dataset string
	policy  string
	recent  []query.Result
	hist    []query.Result
}

// queryWindows are the paper's window lengths: 500, 1000, 5000 ms for the
// synthetic datasets.
var queryWindows = []int64{500, 1000, 5000}

// queryCache shares one workload execution among Fig. 12/13/14, which
// report different columns of the same runs.
var queryCache = struct {
	cfg  Config
	runs []queryRun
	ok   bool
}{}

// runQueryWorkloads executes the Section V-D experiments for the selected
// datasets: for each dataset it runs the recent-data workload while
// writing (under π_c with n=512 and under π_s with the system-recommended
// capacities, per the paper) and the historical workload after loading.
// Results are cached per config so Fig. 12–14 share one execution.
func runQueryWorkloads(cfg Config) ([]queryRun, error) {
	cfg = cfg.withDefaults()
	if queryCache.ok && queryCache.cfg == cfg {
		return queryCache.runs, nil
	}
	const n = 512
	nPoints := cfg.points(2_000_000, 60_000)
	queryEvery := nPoints / 100
	if queryEvery < 1 {
		queryEvery = 1
	}
	cm := query.DefaultHDD()

	specs := workload.TableII()
	if cfg.Quick {
		specs = specs[:2]
	}
	var runs []queryRun
	for si, spec := range specs {
		ps := spec.Generate(nPoints, cfg.Seed+100+int64(si))
		// The paper sets pi_s capacities to "the values recommended by the
		// system": run Algorithm 1 on the spec's distribution. The online
		// zeta setting (loose tail switch, validated within ~1%) keeps the
		// sweep cheap.
		dec := core.TuneWithOpts(spec.Dist(), float64(spec.Dt), n,
			core.TuneOpts{Zeta: core.ZetaOpts{SwitchEps: 1e-2}})
		nseq := sensibleNSeq(dec, n)
		for _, pol := range []struct {
			kind   lsm.PolicyKind
			seqCap int
			label  string
		}{
			{lsm.Conventional, 0, "pi_c"},
			{lsm.Separation, nseq, fmt.Sprintf("pi_s(%d)", nseq)},
		} {
			e, err := lsm.Open(lsm.Config{Policy: pol.kind, MemBudget: n, SeqCapacity: pol.seqCap, SSTablePoints: n})
			if err != nil {
				return nil, err
			}
			recent, err := query.RunRecent(e, ps, queryWindows, queryEvery, cm)
			if err != nil {
				e.Close()
				return nil, err
			}
			histWindows := []int64{10_000, 50_000}
			hist := query.RunHistorical(e, histWindows, 60, cfg.Seed+int64(si), cm)
			e.Close()
			runs = append(runs, queryRun{dataset: spec.Name, policy: pol.label, recent: recent, hist: hist})
		}
	}
	queryCache.cfg, queryCache.runs, queryCache.ok = cfg, runs, true
	return runs, nil
}

// Fig12 reproduces Figure 12: read amplification of the recent-data query
// workload across M1–M12, π_c vs π_s, for each window length.
func Fig12(cfg Config) (*Report, error) {
	runs, err := runQueryWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig12",
		Title:  "Read amplification, recent-data query workload",
		Header: []string{"dataset", "policy", "RA w=500", "RA w=1000", "RA w=5000"},
	}
	for _, r := range runs {
		rep.AddRow(r.dataset, r.policy,
			f(r.recent[0].AvgReadAmp), f(r.recent[1].AvgReadAmp), f(r.recent[2].AvgReadAmp))
	}
	rep.AddNote("expected shapes: pi_s has lower RA (smaller SSTables, fewer useless points read); longer windows have lower RA")
	return rep, nil
}

// Fig13 reproduces Figure 13: modeled HDD latency of the recent-data
// query workload (seeks dominate, so π_s's extra files can hurt).
func Fig13(cfg Config) (*Report, error) {
	runs, err := runQueryWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig13",
		Title:  "Query latency (ns), recent-data query workload",
		Header: []string{"dataset", "policy", "lat w=500", "lat w=1000", "lat w=5000", "files w=5000"},
	}
	for _, r := range runs {
		rep.AddRow(r.dataset, r.policy,
			fmt.Sprintf("%.0f", r.recent[0].AvgModelNs),
			fmt.Sprintf("%.0f", r.recent[1].AvgModelNs),
			fmt.Sprintf("%.0f", r.recent[2].AvgModelNs),
			f1(r.recent[2].AvgTables))
	}
	rep.AddNote("HDD cost model: 5 ms/seek + 1 us/point; expected shapes: latency grows with window; pi_s touches more files so recent queries can be slower despite lower RA")
	return rep, nil
}

// Fig14 reproduces Figure 14: modeled latency of the historical query
// workload, where π_s often closes the gap or wins (its compacted runs
// overlap the queried period with fewer level-1 files).
func Fig14(cfg Config) (*Report, error) {
	runs, err := runQueryWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig14",
		Title:  "Query latency (ns), historical query workload",
		Header: []string{"dataset", "policy", "lat w=10000", "lat w=50000", "files w=50000"},
	}
	for _, r := range runs {
		rep.AddRow(r.dataset, r.policy,
			fmt.Sprintf("%.0f", r.hist[0].AvgModelNs),
			fmt.Sprintf("%.0f", r.hist[1].AvgModelNs),
			f1(r.hist[1].AvgTables))
	}
	rep.AddNote("expected shape: pi_s performs relatively better here than on the recent-data workload (Fig. 15's overlap effect)")
	return rep, nil
}
