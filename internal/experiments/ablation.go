package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

// AblationSSTableSize goes beyond the paper: the evaluation fixes SSTables
// at 512 points; this sweep shows how the compaction-output granularity
// shifts measured WA under both policies (whole-table rewrites are the
// source of the model's known underestimate, so finer tables close the
// gap).
func AblationSSTableSize(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "ablation-sstable",
		Title:  "Ablation: SSTable size vs measured WA (dataset M3 parameters)",
		Header: []string{"sstable points", "WA pi_c", "model r_c", "WA pi_s(n/2)", "model r_s(n/2)"},
	}
	const n = 512
	spec, _ := workload.ByName("M3")
	dd := spec.Dist()
	ps := spec.Generate(cfg.points(2_000_000, 100_000), cfg.Seed+3)
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{128, 512, 2048}
	}
	for _, sz := range sizes {
		waC, _, err := measuredWA(lsm.Conventional, n, 0, sz, ps)
		if err != nil {
			return nil, err
		}
		waS, _, err := measuredWA(lsm.Separation, n, n/2, sz, ps)
		if err != nil {
			return nil, err
		}
		rc := core.WAConventionalTable(dd, float64(spec.Dt), n, sz)
		rs := core.WASeparationTable(dd, float64(spec.Dt), n, n/2, sz, core.ZetaOpts{SwitchEps: 1e-2}).WA
		rep.AddRow(d(sz), f(waC), f(rc), f(waS), f(rs))
	}
	rep.AddNote("the size-aware model (subsequent points + S/2 whole-table correction per merge) tracks the measured growth; the paper's fixed-512 setting is one column of this sweep")
	return rep, nil
}

// AblationZetaEps quantifies the ζ evaluation's accuracy/cost trade-off:
// the tail-switch threshold against computed value and wall time. It
// justifies the default used by Algorithm 1's online setting.
func AblationZetaEps(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "ablation-zeta-eps",
		Title:  "Ablation: zeta tail-switch threshold vs accuracy and cost",
		Header: []string{"switch eps", "zeta(512)", "rel diff vs 1e-6", "wall time"},
	}
	dd := dist.NewLognormal(5, 2)
	ref := core.ZetaWithOpts(dd, 50, 512, core.ZetaOpts{SwitchEps: 1e-6})
	for _, eps := range []float64{1e-1, 1e-2, 3e-3, 1e-3, 1e-4, 1e-6} {
		start := time.Now()
		z := core.ZetaWithOpts(dd, 50, 512, core.ZetaOpts{SwitchEps: eps})
		el := time.Since(start)
		rep.AddRow(fmt.Sprintf("%g", eps), f1(z), fmt.Sprintf("%+.4f%%", 100*(z-ref)/ref), el.Round(time.Millisecond).String())
	}
	rep.AddNote("lognormal(5,2), dt=50: the analytic tail keeps even loose thresholds within a fraction of a percent")
	return rep, nil
}

// AblationTuneSearch compares the literal Algorithm 1 sweep against the
// coarse-to-fine search the analyzer uses online.
func AblationTuneSearch(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "ablation-tune-search",
		Title:  "Ablation: Algorithm 1 exhaustive sweep vs coarse-to-fine search",
		Header: []string{"dataset", "search", "policy", "nseq", "r_s", "model evals", "wall time"},
	}
	const n = 128
	specs := []string{"M3", "M7", "M12"}
	if cfg.Quick {
		specs = specs[:1]
	}
	for _, name := range specs {
		spec, _ := workload.ByName(name)
		dd := spec.Dist()
		for _, mode := range []struct {
			label string
			opts  core.TuneOpts
		}{
			{"coarse", core.TuneOpts{}},
			{"exhaustive(step 4)", core.TuneOpts{Exhaustive: true, Step: 4}},
		} {
			start := time.Now()
			dec := core.TuneWithOpts(dd, float64(spec.Dt), n, mode.opts)
			el := time.Since(start)
			rep.AddRow(spec.Name, mode.label, dec.Policy.String(), d(dec.NSeq), f(dec.Rs),
				d(dec.Evaluations), el.Round(time.Millisecond).String())
		}
	}
	rep.AddNote("the U shape of r_s(n_seq) lets the coarse search find the same basin as a sweep; Algorithm 1's literal step-1 sweep costs ~4x more evaluations at n=128 and ~16x at n=512")
	return rep, nil
}

// AblationIotaOffset compares the g model's two ι calibrations — the
// default ι_i = i·Δt and the frontier-lag-corrected ι_i = i·Δt + median
// delay — against the simulator's observed out-of-order rate per C_seq
// fill cycle.
func AblationIotaOffset(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "ablation-iota",
		Title:  "Ablation: g-model iota calibration vs simulated out-of-order rate",
		Header: []string{"dataset", "nseq", "simulated g", "g (iota=i*dt)", "g (iota=i*dt+median)"},
	}
	const n = 512
	specs := []string{"M2", "M6", "M9"}
	if cfg.Quick {
		specs = specs[:1]
	}
	for si, name := range specs {
		spec, _ := workload.ByName(name)
		dd := spec.Dist()
		ps := spec.Generate(cfg.points(2_000_000, 100_000), cfg.Seed+300+int64(si))
		for _, nseq := range []int{128, 256} {
			// Simulated g: out-of-order arrivals per C_seq fill, measured
			// from engine stats (OOO points / number of seq flushes).
			e, err := lsm.Open(lsm.Config{Policy: lsm.Separation, MemBudget: n, SeqCapacity: nseq, SSTablePoints: n})
			if err != nil {
				return nil, err
			}
			if err := e.PutBatch(ps); err != nil {
				e.Close()
				return nil, err
			}
			st := e.Stats()
			e.Close()
			fills := float64(st.InOrderPoints) / float64(nseq)
			simG := 0.0
			if fills > 0 {
				simG = float64(st.OutOfOrderPoints) / fills
			}
			g0 := core.G(dd, float64(spec.Dt), float64(nseq))
			gOff := core.GWithOffset(dd, float64(spec.Dt), float64(nseq), dd.Quantile(0.5))
			rep.AddRow(spec.Name, d(nseq), f(simG), f(g0), f(gOff))
		}
	}
	rep.AddNote("the offset models LAST(R)'s own lag behind wall-clock at flush time; whichever calibration lands closer justifies the default")
	return rep, nil
}
