package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/workload"
)

// hStream materializes the simulated dataset H at the configured scale.
func hStream(cfg Config) []series.Point {
	h := workload.DefaultH()
	h.Seed = cfg.Seed + 6
	h.N = cfg.points(1_000_000, 150_000)
	return workload.HLike(h)
}

// Fig19 reproduces Figure 19: the delay set and distribution of dataset H
// — the systematic ~5×10⁴ ms re-send mode and the out-of-order statistics
// reported in Section VI.
func Fig19(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ps := hStream(cfg)
	delays := workload.Delays(ps)

	rep := &Report{
		ID:     "fig19",
		Title:  "Delay set and distribution of dataset H (simulated)",
		Header: []string{"statistic", "value"},
	}
	rep.AddRow("points", d(len(ps)))
	rep.AddRow("mean delay (ms)", f1(metrics.Mean(delays)))
	rep.AddRow("p50 delay (ms)", f1(metrics.Quantile(delays, 0.5)))
	rep.AddRow("p99.9 delay (ms)", f1(metrics.Quantile(delays, 0.999)))
	rep.AddRow("max delay (ms)", f1(metrics.Quantile(delays, 1)))

	ooo := series.CountOutOfOrder(ps, 8, math.MinInt64)
	rep.AddRow("out-of-order fraction", fmt.Sprintf("%.4f%%", 100*float64(ooo)/float64(len(ps))))

	// Mean delay of out-of-order points (Section VI reports ≈2.49 s on
	// the real H). The frontier advances as an 8-point buffer flushes,
	// mirroring series.CountOutOfOrder.
	var oooSum float64
	var oooN int
	last := int64(math.MinInt64)
	var bufMax int64 = math.MinInt64
	var buffered int
	for _, p := range ps {
		if p.TG < last {
			oooSum += float64(p.Delay())
			oooN++
		}
		if p.TG > bufMax {
			bufMax = p.TG
		}
		buffered++
		if buffered == 8 {
			if bufMax > last {
				last = bufMax
			}
			buffered = 0
			bufMax = math.MinInt64
		}
	}
	if oooN > 0 {
		rep.AddRow("mean delay of OOO points (ms)", f1(oooSum/float64(oooN)))
	}
	h := metrics.NewHistogram(0, 60_000, 12)
	for _, v := range delays {
		h.Observe(v)
	}
	rep.AddNote("delay histogram (5s bins):")
	rep.AddNote("\n" + h.Render(40))
	rep.AddNote("expected shape: almost all delays tiny; a systematic mode just below the ~5e4 ms re-send period")
	return rep, nil
}

// Fig16 reproduces Figure 16: (a) the delays of H are not independent —
// the sample autocorrelation exceeds the white-noise band; (b) the WA
// estimation still picks the right policy (π_c wins on H).
func Fig16(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ps := hStream(cfg)
	delays := workload.Delays(ps)

	rep := &Report{
		ID:     "fig16",
		Title:  "Robustness on H: autocorrelated delays; estimation still picks pi_c",
		Header: []string{"row", "value"},
	}
	acf, bound := metrics.Autocorrelation(delays, 10)
	var exceed int
	for _, r := range acf {
		if math.Abs(r) > bound {
			exceed++
		}
	}
	rep.AddRow("acf lags 1..5", fmt.Sprintf("%.3f %.3f %.3f %.3f %.3f", acf[0], acf[1], acf[2], acf[3], acf[4]))
	rep.AddRow("white-noise bound", fmt.Sprintf("±%.4f", bound))
	rep.AddRow("lags beyond bound (of 10)", d(exceed))

	const n = 512
	prof, dt := fitEmpirical(ps)
	dec := core.Tune(prof, dt, n)
	waC, _, err := measuredWA(lsm.Conventional, n, 0, n, ps)
	if err != nil {
		return nil, err
	}
	nseq := sensibleNSeq(dec, n)
	waS, _, err := measuredWA(lsm.Separation, n, nseq, n, ps)
	if err != nil {
		return nil, err
	}
	rep.AddRow("pi_c estimated / real WA", f(dec.Rc)+" / "+f(waC))
	rep.AddRow(fmt.Sprintf("pi_s(nseq=%d) estimated / real WA", nseq), f(dec.Rs)+" / "+f(waS))
	rep.AddRow("Algorithm 1 chooses", policyLabel(dec, n))
	rep.AddNote("expected shape: delays strongly autocorrelated (batched re-sends), yet the approximate model still detects that pi_c outperforms pi_s on H")
	return rep, nil
}

// Fig20 reproduces Figure 20: query latency on dataset H for the
// recent-data and historical workloads under π_c and π_s.
func Fig20(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ps := hStream(cfg)
	const n = 512
	cm := query.DefaultHDD()
	// Windows in ms: the paper uses 5/10/20 s for H (Δt = 1 s).
	recentW := []int64{5_000, 10_000, 20_000}
	histW := []int64{10_000, 20_000}
	queryEvery := len(ps) / 100
	if queryEvery < 1 {
		queryEvery = 1
	}

	prof, dt := fitEmpirical(ps)
	dec := core.Tune(prof, dt, n)
	nseq := sensibleNSeq(dec, n)

	rep := &Report{
		ID:     "fig20",
		Title:  "Query latency (ns) on dataset H: recent-data and historical workloads",
		Header: []string{"workload", "window(ms)", "pi_c", "pi_s"},
	}
	type res struct{ recent, hist []query.Result }
	var out [2]res
	for pi, pol := range []struct {
		kind   lsm.PolicyKind
		seqCap int
	}{{lsm.Conventional, 0}, {lsm.Separation, nseq}} {
		e, err := lsm.Open(lsm.Config{Policy: pol.kind, MemBudget: n, SeqCapacity: pol.seqCap, SSTablePoints: n})
		if err != nil {
			return nil, err
		}
		recent, err := query.RunRecent(e, ps, recentW, queryEvery, cm)
		if err != nil {
			e.Close()
			return nil, err
		}
		hist := query.RunHistorical(e, histW, 60, cfg.Seed, cm)
		e.Close()
		out[pi] = res{recent: recent, hist: hist}
	}
	for i, w := range recentW {
		rep.AddRow("recent", d(int(w)),
			fmt.Sprintf("%.0f", out[0].recent[i].AvgModelNs),
			fmt.Sprintf("%.0f", out[1].recent[i].AvgModelNs))
	}
	for i, w := range histW {
		rep.AddRow("historical", d(int(w)),
			fmt.Sprintf("%.0f", out[0].hist[i].AvgModelNs),
			fmt.Sprintf("%.0f", out[1].hist[i].AvgModelNs))
	}
	rep.AddNote(fmt.Sprintf("pi_s uses the recommended nseq=%d", nseq))
	rep.AddNote("expected shape: latency gap narrows on the historical workload; at the longest window pi_s can win")
	return rep, nil
}
