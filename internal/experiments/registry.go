package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one report.
type Runner func(Config) (*Report, error)

// registry maps experiment IDs to runners, in presentation order.
var registry = []struct {
	id     string
	paper  string
	runner Runner
}{
	{"table2", "Table II: synthetic dataset parameters", Table2},
	{"fig5", "Fig. 5: subsequent-point model vs measurement", Fig5},
	{"fig7", "Fig. 7: WA vs n_seq, model vs measurement", Fig7},
	{"fig8", "Fig. 8: S-9 delay profile", Fig8},
	{"fig9", "Fig. 9: WA on M1-M12", Fig9},
	{"fig10", "Fig. 10: WA under drifting sigma with pi_adaptive", Fig10},
	{"fig11", "Fig. 11: WA on S-9, estimated vs real", Fig11},
	{"fig12", "Fig. 12: read amplification, recent-data queries", Fig12},
	{"fig13", "Fig. 13: latency, recent-data queries", Fig13},
	{"fig14", "Fig. 14: latency, historical queries", Fig14},
	{"fig15", "Fig. 15: SSTable spans vs queried ranges", Fig15},
	{"table3", "Table III: write throughput", Table3},
	{"fig16", "Fig. 16: robustness on H (autocorrelated delays)", Fig16},
	{"fig17", "Fig. 17: dynamic determination without fixed distribution", Fig17},
	{"fig18", "Fig. 18: S-9 without fixed generation interval", Fig18},
	{"fig19", "Fig. 19: H delay profile", Fig19},
	{"fig20", "Fig. 20: query latency on H", Fig20},
	{"ablation-sstable", "Ablation: SSTable size vs WA", AblationSSTableSize},
	{"ablation-zeta-eps", "Ablation: zeta threshold accuracy/cost", AblationZetaEps},
	{"ablation-tune-search", "Ablation: tuning search strategies", AblationTuneSearch},
	{"ablation-iota", "Ablation: g-model iota calibration", AblationIotaOffset},
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Describe returns the one-line description for an experiment ID.
func Describe(id string) (string, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.paper, true
		}
	}
	return "", false
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.runner, true
		}
	}
	return nil, false
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Report, error) {
	r, ok := Lookup(id)
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return r(cfg)
}
