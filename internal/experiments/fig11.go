package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/series"
	"repro/internal/workload"
)

// Fig8 reproduces Figure 8: the delay profile of dataset S-9 (simulated;
// see DESIGN.md §3) — delays over arrival order and their distribution.
func Fig8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	s9 := workload.DefaultS9()
	s9.Seed = cfg.Seed + 9
	ps := workload.S9Like(s9)
	delays := workload.Delays(ps)

	rep := &Report{
		ID:     "fig8",
		Title:  "Delay profile of dataset S-9 (simulated)",
		Header: []string{"statistic", "value"},
	}
	rep.AddRow("points", d(len(ps)))
	rep.AddRow("mean delay (ms)", f1(meanOf(delays)))
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rep.AddRow(fmt.Sprintf("p%g delay (ms)", q*100), f1(quantileOf(delays, q)))
	}
	ooo := series.CountOutOfOrder(ps, 8, math.MinInt64)
	rep.AddRow("out-of-order fraction (budget 8)", fmt.Sprintf("%.2f%%", 100*float64(ooo)/float64(len(ps))))
	rep.AddNote("real S-9: skewed delays, 7.05%% out-of-order at budget 8")
	return rep, nil
}

// Fig11 reproduces Figure 11: estimated versus real write amplification of
// π_c and π_s on dataset S-9, with the paper's memory budget of 8 (the
// dataset is small, so a small budget is needed to trigger merges at all).
func Fig11(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	s9 := workload.DefaultS9()
	s9.Seed = cfg.Seed + 9
	ps := workload.S9Like(s9)

	const n = 8 // paper footnote 2
	prof, dt := fitEmpirical(ps)
	dec := core.Tune(prof, dt, n)

	rep := &Report{
		ID:     "fig11",
		Title:  "WA on S-9: estimated vs real, pi_c vs pi_s",
		Header: []string{"policy", "estimated WA", "real WA"},
	}
	rep.AddNote(fmt.Sprintf("memory budget n=%d (paper footnote 2); analyzer profile: %d delays, dt≈%.1f ms", n, prof.N(), dt))

	waC, _, err := measuredWA(lsm.Conventional, n, 0, n, ps)
	if err != nil {
		return nil, err
	}
	rep.AddRow("pi_c", f(dec.Rc), f(waC))

	nseq := dec.NSeq
	if nseq < 1 || nseq >= n {
		nseq = n / 2
	}
	waS, _, err := measuredWA(lsm.Separation, n, nseq, n, ps)
	if err != nil {
		return nil, err
	}
	rep.AddRow(fmt.Sprintf("pi_s(nseq=%d)", nseq), f(dec.Rs), f(waS))
	rep.AddNote(fmt.Sprintf("Algorithm 1 chooses %s", policyLabel(dec, n)))
	rep.AddNote("expected shape: pi_s beats pi_c on S-9 (skewed delays share subsequent points across merges)")
	return rep, nil
}

// meanOf and quantileOf alias the metrics helpers for terse experiment
// code.
func meanOf(xs []float64) float64                { return metrics.Mean(xs) }
func quantileOf(xs []float64, p float64) float64 { return metrics.Quantile(xs, p) }
