package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lsm"
	"repro/internal/workload"
)

// TestRsDerivationChoice compares measured WA under pi_s against both
// candidate formulas (A: 2 + (zeta-nn-nl)/N from the paper's N_cur; B: the
// printed Eq.5 1 + (zeta+nn+nl)/N) to document which matches reality.
func TestRsDerivationChoice(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep is slow")
	}
	d := dist.NewLognormal(5, 2)
	const n = 512
	ps := workload.Synthetic(400_000, 50, d, 77)
	fmt.Println("nseq  measured   formulaA   formulaB")
	for _, nseq := range []int{64, 128, 256, 384, 448} {
		e, err := lsm.Open(lsm.Config{Policy: lsm.Separation, MemBudget: n, SeqCapacity: nseq})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			e.Put(p)
		}
		st := e.Stats()
		e.Close()
		est := core.WASeparation(d, 50, n, nseq)
		formulaB := 1 + (est.ZetaN+float64(n-nseq)+est.NSeqLast)/est.NArrive
		fmt.Printf("%4d  %8.3f  %8.3f  %8.3f  (g=%.1f N=%.0f zeta=%.0f)\n",
			nseq, st.WriteAmplification(), est.WA, formulaB, est.G, est.NArrive, est.ZetaN)
	}
	rc := core.WAConventional(d, 50, n)
	ec, _ := lsm.Open(lsm.Config{Policy: lsm.Conventional, MemBudget: n})
	for _, p := range ps {
		ec.Put(p)
	}
	fmt.Printf("pi_c  measured %.3f  model %.3f\n", ec.Stats().WriteAmplification(), rc)
	ec.Close()
}
