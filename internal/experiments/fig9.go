package experiments

import (
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/workload"
)

// Table2 prints the synthetic dataset parameters (Table II).
func Table2(cfg Config) (*Report, error) {
	rep := &Report{
		ID:     "table2",
		Title:  "Parameters for the synthetic datasets (Table II)",
		Header: []string{"dataset", "dt", "mu", "sigma"},
	}
	for _, s := range workload.TableII() {
		rep.AddRow(s.Name, d(int(s.Dt)), f1(s.Mu), f1(s.Sigma))
	}
	return rep, nil
}

// Fig9 reproduces Figure 9: measured versus modeled write amplification on
// every synthetic dataset M1–M12, under π_c and under π_s across the
// n_seq sweep (the paper plots n_seq from 50 to ~450 at n = 512).
func Fig9(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:     "fig9",
		Title:  "WA on M1-M12: measured vs model, pi_c and pi_s(n_seq sweep)",
		Header: []string{"dataset", "config", "measured WA", "model WA"},
	}
	rep.AddNote("n=512, SSTable=512 points; paper datasets have 10M points each")

	const n = 512
	nPoints := cfg.points(10_000_000, 120_000)
	sweep := []int{50, 100, 150, 200, 250, 300, 350, 400, 450}
	specs := workload.TableII()
	if cfg.Quick {
		sweep = []int{100, 250, 400}
		specs = specs[:2]
	}

	for si, spec := range specs {
		d := spec.Dist()
		ps := spec.Generate(nPoints, cfg.Seed+int64(si))
		waC, _, err := measuredWA(lsm.Conventional, n, 0, n, ps)
		if err != nil {
			return nil, err
		}
		rep.AddRow(spec.Name, "pi_c", f(waC), f(core.WAConventional(d, float64(spec.Dt), n)))
		for _, nseq := range sweep {
			waS, _, err := measuredWA(lsm.Separation, n, nseq, n, ps)
			if err != nil {
				return nil, err
			}
			est := core.WASeparationOpts(d, float64(spec.Dt), n, nseq, core.ZetaOpts{SwitchEps: 1e-2})
			rep.AddRow(spec.Name, "pi_s(nseq="+d2(nseq)+")", f(waS), f(est.WA))
		}
	}
	rep.AddNote("expected shapes: larger dt => lower WA (M1-M6 vs M7-M12); larger mu or sigma => higher WA; U shape in n_seq, sharpest for M12")
	return rep, nil
}
