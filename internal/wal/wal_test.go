package wal

import (
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	want := []series.Point{
		{TG: 100, TA: 105, V: 1.5},
		{TG: 50, TA: 106, V: -2},
		{TG: 200, TA: 210, V: 0},
	}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := Replay(b, "wal")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAppendBatch(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	ps := make([]series.Point, 100)
	for i := range ps {
		ps[i] = series.Point{TG: int64(i), TA: int64(i) + 1, V: float64(i)}
	}
	if err := l.AppendBatch(ps); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	got, err := Replay(b, "wal")
	if err != nil || len(got) != 100 {
		t.Fatalf("Replay: %d points, %v", len(got), err)
	}
}

func TestReplayMissingLog(t *testing.T) {
	got, err := Replay(storage.NewMemBackend(), "nothere")
	if err != nil || got != nil {
		t.Errorf("missing log: %v, %v", got, err)
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	l.Append(series.Point{TG: 1, TA: 2, V: 3})
	l.Append(series.Point{TG: 4, TA: 5, V: 6})
	// Simulate a crash mid-append: chop bytes off the end.
	data, _ := b.Read("wal")
	b.Write("wal", data[:len(data)-3])
	got, err := Replay(b, "wal")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != 1 || got[0].TG != 1 {
		t.Errorf("torn tail: got %v, want first record only", got)
	}
}

func TestReplayStopsAtCorruptRecord(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	l.Append(series.Point{TG: 1, TA: 2, V: 3})
	l.Append(series.Point{TG: 4, TA: 5, V: 6})
	l.Append(series.Point{TG: 7, TA: 8, V: 9})
	data, _ := b.Read("wal")
	// Flip a payload byte in the middle record.
	data[len(data)/2] ^= 0xff
	b.Write("wal", data)
	got, err := Replay(b, "wal")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) >= 3 {
		t.Errorf("corrupt middle record not detected: %d records", len(got))
	}
}

func TestTruncate(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	l.Append(series.Point{TG: 1})
	if err := l.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, _ := Replay(b, "wal")
	if len(got) != 0 {
		t.Errorf("after truncate: %v", got)
	}
	// Log remains usable after truncation.
	l.Append(series.Point{TG: 9})
	got, _ = Replay(b, "wal")
	if len(got) != 1 || got[0].TG != 9 {
		t.Errorf("append after truncate: %v", got)
	}
}

func TestReplayRejectsHugeLengthPrefix(t *testing.T) {
	// A length prefix whose uvarint value exceeds maxPayload must be
	// rejected on the 64-bit value itself. (The historical bug converted
	// it to int first, which overflows on 32-bit platforms and could slip
	// past the bound check; this input encodes 2^62.)
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	l.Append(series.Point{TG: 1, TA: 2, V: 3})
	b.Append("wal", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40})
	got, rep, err := ReplayWithReport(b, "wal")
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != 1 || got[0].TG != 1 {
		t.Errorf("got %v, want the one intact record", got)
	}
	if !rep.Torn || rep.TornBytes != 9 {
		t.Errorf("report = %+v, want Torn with 9 trailing bytes", rep)
	}
}

func TestReplayReportCleanLog(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	l.Append(series.Point{TG: 1, TA: 2, V: 3})
	l.Append(series.Point{TG: 4, TA: 5, V: 6})
	_, rep, err := ReplayWithReport(b, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn || rep.TornBytes != 0 || rep.Points != 2 {
		t.Errorf("clean log report = %+v", rep)
	}
}

func TestRewriteReplacesContentsAtomically(t *testing.T) {
	b := storage.NewMemBackend()
	l := Open(b, "wal")
	for i := int64(0); i < 10; i++ {
		l.Append(series.Point{TG: i, TA: i})
	}
	kept := []series.Point{{TG: 8, TA: 8}, {TG: 9, TA: 9}}
	if err := l.Rewrite(kept); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	got, err := Replay(b, "wal")
	if err != nil || len(got) != 2 || got[0] != kept[0] || got[1] != kept[1] {
		t.Fatalf("after rewrite: %v, %v", got, err)
	}
	// Rewrite to empty is a truncate.
	if err := l.Rewrite(nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := Replay(b, "wal"); len(got) != 0 {
		t.Errorf("after empty rewrite: %v", got)
	}
}

// TestRewriteSurvivesCrashBeforeWrite models the crash window the old
// Truncate+AppendBatch sequence had: if the backend dies between the two
// steps, the log is empty and buffered points are gone. Rewrite is one
// atomic Write, so a failed rewrite leaves the previous contents intact.
func TestRewriteSurvivesCrashBeforeWrite(t *testing.T) {
	inner := storage.NewMemBackend()
	fb := storage.NewFaultBackend(inner)
	l := Open(fb, "wal")
	for i := int64(0); i < 5; i++ {
		if err := l.Append(series.Point{TG: i, TA: i}); err != nil {
			t.Fatal(err)
		}
	}
	fb.SetBudget(0)
	if err := l.Rewrite([]series.Point{{TG: 4, TA: 4}}); err == nil {
		t.Fatal("rewrite on dead backend succeeded")
	}
	got, err := Replay(inner, "wal")
	if err != nil || len(got) != 5 {
		t.Fatalf("failed rewrite lost the old log: %d points, %v", len(got), err)
	}
}

func TestClosedLog(t *testing.T) {
	l := Open(storage.NewMemBackend(), "wal")
	l.Close()
	if err := l.Append(series.Point{}); err != ErrClosed {
		t.Errorf("Append on closed: %v", err)
	}
	if err := l.AppendBatch(nil); err != ErrClosed {
		t.Errorf("AppendBatch on closed: %v", err)
	}
	if err := l.Truncate(); err != ErrClosed {
		t.Errorf("Truncate on closed: %v", err)
	}
	if err := l.Rewrite(nil); err != ErrClosed {
		t.Errorf("Rewrite on closed: %v", err)
	}
}

func TestReplayOnDisk(t *testing.T) {
	d, err := storage.NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := Open(d, "wal")
	for i := 0; i < 10; i++ {
		if err := l.Append(series.Point{TG: int64(i), TA: int64(i), V: 1}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := Replay(d, "wal")
	if err != nil || len(got) != 10 {
		t.Fatalf("Replay from disk: %d, %v", len(got), err)
	}
}
