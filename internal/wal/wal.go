// Package wal implements a write-ahead log for the LSM engine. Every point
// accepted into a MemTable is first appended to the log so that an engine
// restart can rebuild the memory state that had not yet been flushed to
// SSTables.
//
// Record format (per point):
//
//	length uvarint | payload | crc32 u32
//
// where payload = TG varint, TA varint, V float64. Replay stops cleanly at
// the first torn or corrupt record — the tail of a log written during a
// crash is expected to be garbage.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/encoding"
	"repro/internal/series"
	"repro/internal/storage"
)

// Log is an append-only write-ahead log stored as one object in a storage
// backend.
type Log struct {
	backend storage.Backend
	name    string
	buf     []byte // reusable encode buffer
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Open returns a log writing to the named object in backend. The object is
// created on first append.
func Open(backend storage.Backend, name string) *Log {
	return &Log{backend: backend, name: name}
}

// Append durably records one point.
func (l *Log) Append(p series.Point) error {
	if l.backend == nil {
		return ErrClosed
	}
	l.buf = encodeRecord(l.buf[:0], p)
	return l.backend.Append(l.name, l.buf)
}

// AppendBatch records several points in one backend write.
func (l *Log) AppendBatch(ps []series.Point) error {
	if l.backend == nil {
		return ErrClosed
	}
	l.buf = l.buf[:0]
	for _, p := range ps {
		l.buf = encodeRecord(l.buf, p)
	}
	return l.backend.Append(l.name, l.buf)
}

// Truncate discards the log contents, typically after a successful flush
// made the logged points durable in SSTables.
func (l *Log) Truncate() error {
	if l.backend == nil {
		return ErrClosed
	}
	return l.backend.Write(l.name, nil)
}

// Rewrite atomically replaces the log contents with exactly ps, via the
// backend's whole-object Write (write-temp-then-rename on disk). Unlike a
// Truncate followed by AppendBatch, there is no window in which the log is
// empty while ps is still volatile — a crash anywhere leaves either the old
// or the new log, never neither.
func (l *Log) Rewrite(ps []series.Point) error {
	if l.backend == nil {
		return ErrClosed
	}
	l.buf = l.buf[:0]
	for _, p := range ps {
		l.buf = encodeRecord(l.buf, p)
	}
	return l.backend.Write(l.name, l.buf)
}

// Close detaches the log. Further operations fail with ErrClosed.
func (l *Log) Close() { l.backend = nil }

// Replay reads this log's current contents (see the package-level Replay).
// It exists so *Log satisfies the engine's WAL interface alongside shared
// implementations like groupwal's per-series handles.
func (l *Log) Replay() ([]series.Point, ReplayReport, error) {
	if l.backend == nil {
		return nil, ReplayReport{}, ErrClosed
	}
	return ReplayWithReport(l.backend, l.name)
}

// encodeRecord appends one framed record to dst.
func encodeRecord(dst []byte, p series.Point) []byte {
	var payload []byte
	payload = encoding.PutVarint(payload, p.TG)
	payload = encoding.PutVarint(payload, p.TA)
	payload = encoding.PutFloat64(payload, p.V)
	dst = encoding.PutUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	dst = encoding.PutUint32(dst, crc32.ChecksumIEEE(payload))
	return dst
}

// maxPayload bounds one record's payload length. A length prefix above it
// is treated as corruption; the bound is checked on the uvarint value
// BEFORE conversion to int, so a garbage 64-bit length cannot overflow int
// on 32-bit platforms and slip past the check.
const maxPayload = 1 << 20

// ReplayReport describes what Replay found beyond the points themselves,
// so callers can tell a clean log from one that ended in a crash.
type ReplayReport struct {
	// Points is the number of intact records decoded.
	Points int
	// Torn is true when decoding stopped before the end of the object —
	// the tail holds a torn or corrupt record, expected after a crash
	// mid-append but a detectable invariant violation otherwise.
	Torn bool
	// TornBytes is the number of trailing bytes discarded.
	TornBytes int
}

// Replay reads the named log from backend and returns every intact point in
// append order. A missing object yields no points and no error. Decoding
// stops cleanly at the first damaged record; everything before it is
// returned.
func Replay(backend storage.Backend, name string) ([]series.Point, error) {
	pts, _, err := ReplayWithReport(backend, name)
	return pts, err
}

// ReplayWithReport is Replay plus a report of how decoding ended.
func ReplayWithReport(backend storage.Backend, name string) ([]series.Point, ReplayReport, error) {
	var rep ReplayReport
	data, err := backend.Read(name)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, rep, nil
	}
	if err != nil {
		return nil, rep, fmt.Errorf("wal: replay: %w", err)
	}
	var points []series.Point
	off := 0
	for off < len(data) {
		plen, n, err := encoding.Uvarint(data[off:])
		if err != nil || plen > maxPayload {
			break // torn length prefix or absurd length
		}
		recStart := off + n
		recEnd := recStart + int(plen)
		if recEnd+4 > len(data) {
			break // torn record
		}
		payload := data[recStart:recEnd]
		wantCRC, _, err := encoding.Uint32(data[recEnd:])
		if err != nil || crc32.ChecksumIEEE(payload) != wantCRC {
			break // corrupt record
		}
		p, ok := decodePayload(payload)
		if !ok {
			break
		}
		points = append(points, p)
		off = recEnd + 4
	}
	rep.Points = len(points)
	rep.Torn = off < len(data)
	rep.TornBytes = len(data) - off
	return points, rep, nil
}

// decodePayload parses the body of one record.
func decodePayload(payload []byte) (series.Point, bool) {
	var p series.Point
	tg, n, err := encoding.Varint(payload)
	if err != nil {
		return p, false
	}
	payload = payload[n:]
	ta, n, err := encoding.Varint(payload)
	if err != nil {
		return p, false
	}
	payload = payload[n:]
	v, _, err := encoding.Float64(payload)
	if err != nil {
		return p, false
	}
	return series.Point{TG: tg, TA: ta, V: v}, true
}
