// Package wal implements a write-ahead log for the LSM engine. Every point
// accepted into a MemTable is first appended to the log so that an engine
// restart can rebuild the memory state that had not yet been flushed to
// SSTables.
//
// Record format (per point):
//
//	length uvarint | payload | crc32 u32
//
// where payload = TG varint, TA varint, V float64. Replay stops cleanly at
// the first torn or corrupt record — the tail of a log written during a
// crash is expected to be garbage.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/encoding"
	"repro/internal/series"
	"repro/internal/storage"
)

// Log is an append-only write-ahead log stored as one object in a storage
// backend.
type Log struct {
	backend storage.Backend
	name    string
	buf     []byte // reusable encode buffer
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Open returns a log writing to the named object in backend. The object is
// created on first append.
func Open(backend storage.Backend, name string) *Log {
	return &Log{backend: backend, name: name}
}

// Append durably records one point.
func (l *Log) Append(p series.Point) error {
	if l.backend == nil {
		return ErrClosed
	}
	l.buf = encodeRecord(l.buf[:0], p)
	return l.backend.Append(l.name, l.buf)
}

// AppendBatch records several points in one backend write.
func (l *Log) AppendBatch(ps []series.Point) error {
	if l.backend == nil {
		return ErrClosed
	}
	l.buf = l.buf[:0]
	for _, p := range ps {
		l.buf = encodeRecord(l.buf, p)
	}
	return l.backend.Append(l.name, l.buf)
}

// Truncate discards the log contents, typically after a successful flush
// made the logged points durable in SSTables.
func (l *Log) Truncate() error {
	if l.backend == nil {
		return ErrClosed
	}
	return l.backend.Write(l.name, nil)
}

// Close detaches the log. Further operations fail with ErrClosed.
func (l *Log) Close() { l.backend = nil }

// encodeRecord appends one framed record to dst.
func encodeRecord(dst []byte, p series.Point) []byte {
	var payload []byte
	payload = encoding.PutVarint(payload, p.TG)
	payload = encoding.PutVarint(payload, p.TA)
	payload = encoding.PutFloat64(payload, p.V)
	dst = encoding.PutUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	dst = encoding.PutUint32(dst, crc32.ChecksumIEEE(payload))
	return dst
}

// Replay reads the named log from backend and returns every intact point in
// append order. A missing object yields no points and no error. Decoding
// stops silently at the first damaged record; everything before it is
// returned.
func Replay(backend storage.Backend, name string) ([]series.Point, error) {
	data, err := backend.Read(name)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: replay: %w", err)
	}
	var points []series.Point
	off := 0
	for off < len(data) {
		plen, n, err := encoding.Uvarint(data[off:])
		if err != nil {
			break // torn length prefix
		}
		recStart := off + n
		recEnd := recStart + int(plen)
		if plen > 1<<20 || recEnd+4 > len(data) {
			break // torn record
		}
		payload := data[recStart:recEnd]
		wantCRC, _, err := encoding.Uint32(data[recEnd:])
		if err != nil || crc32.ChecksumIEEE(payload) != wantCRC {
			break // corrupt record
		}
		p, ok := decodePayload(payload)
		if !ok {
			break
		}
		points = append(points, p)
		off = recEnd + 4
	}
	return points, nil
}

// decodePayload parses the body of one record.
func decodePayload(payload []byte) (series.Point, bool) {
	var p series.Point
	tg, n, err := encoding.Varint(payload)
	if err != nil {
		return p, false
	}
	payload = payload[n:]
	ta, n, err := encoding.Varint(payload)
	if err != nil {
		return p, false
	}
	payload = payload[n:]
	v, _, err := encoding.Float64(payload)
	if err != nil {
		return p, false
	}
	return series.Point{TG: tg, TA: ta, V: v}, true
}
