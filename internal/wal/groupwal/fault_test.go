package groupwal

import (
	"reflect"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

// The groupwal fault sweep: run a fixed multi-series workload of appends,
// checkpoints, and forgets, crash after the k-th backend mutation for every
// k (tearing the failing append on odd k), reopen on the undamaged inner
// backend, and require each series' replay to be one of the few states the
// crash semantics allow — with every OTHER series exactly at its last
// acknowledged state. Two of the three series share a shard on purpose, so
// a torn group commit cutting one series' records must not cost the other
// anything acknowledged earlier.

type gwOp struct {
	kind string // "append", "checkpoint", "forget"
	s    string
	pts  []series.Point
}

func gwWorkload() []gwOp {
	p := func(tg int64, v float64) series.Point { return series.Point{TG: tg, TA: tg, V: v} }
	return []gwOp{
		{kind: "append", s: "a", pts: []series.Point{p(0, 100), p(1, 101)}},
		{kind: "append", s: "b", pts: []series.Point{p(0, 200)}},
		{kind: "append", s: "a", pts: []series.Point{p(2, 102)}},
		{kind: "append", s: "c", pts: []series.Point{p(0, 300), p(1, 301), p(2, 302)}},
		{kind: "checkpoint", s: "a", pts: []series.Point{p(2, 102)}}, // 0,1 flushed
		{kind: "append", s: "b", pts: []series.Point{p(1, 201), p(2, 202)}},
		{kind: "append", s: "a", pts: []series.Point{p(3, 103)}},
		{kind: "forget", s: "c"},
		{kind: "checkpoint", s: "b", pts: nil}, // everything flushed
		{kind: "append", s: "b", pts: []series.Point{p(3, 203)}},
		{kind: "append", s: "a", pts: []series.Point{p(4, 104)}},
	}
}

// applyOp folds one op into a pending-state model.
func applyOp(pending map[string][]series.Point, o gwOp) {
	switch o.kind {
	case "append":
		pending[o.s] = append(append([]series.Point{}, pending[o.s]...), o.pts...)
	case "checkpoint":
		pending[o.s] = append([]series.Point{}, o.pts...)
	case "forget":
		delete(pending, o.s)
	}
}

func clonePending(m map[string][]series.Point) map[string][]series.Point {
	out := make(map[string][]series.Point, len(m))
	for k, v := range m {
		out[k] = append([]series.Point{}, v...)
	}
	return out
}

func runGWWorkload(l *Log) (acked map[string][]series.Point, inflight *gwOp) {
	acked = map[string][]series.Point{}
	for _, o := range gwWorkload() {
		o := o
		var err error
		switch o.kind {
		case "append":
			err = l.SeriesLog(o.s).AppendBatch(o.pts)
		case "checkpoint":
			err = l.SeriesLog(o.s).Rewrite(o.pts)
		case "forget":
			err = l.Forget(o.s)
		}
		if err != nil {
			return acked, &o
		}
		applyOp(acked, o)
	}
	return acked, nil
}

// legalStates enumerates the replay states a crash during the in-flight op
// may leave for ITS series: the op fully absent, fully applied, or — for a
// checkpoint, whose commit is data records followed by the cursor record —
// the re-appended data durable but the cursor torn off (old pending plus
// the re-appended copy; the engine's replay upserts dedupe it).
func legalStates(acked map[string][]series.Point, inflight *gwOp) []map[string][]series.Point {
	states := []map[string][]series.Point{clonePending(acked)}
	if inflight == nil {
		return states
	}
	applied := clonePending(acked)
	applyOp(applied, *inflight)
	states = append(states, applied)
	if inflight.kind == "checkpoint" {
		half := clonePending(acked)
		half[inflight.s] = append(append([]series.Point{}, acked[inflight.s]...), inflight.pts...)
		states = append(states, half)
	}
	// A torn append of a multi-record op can persist a prefix of its
	// chunks; workload appends fit one record each, so no extra state.
	return states
}

func TestGroupWALCrashAtEveryWrite(t *testing.T) {
	// Counting pass.
	counter := storage.NewFaultBackend(storage.NewMemBackend())
	l, err := Open(Config{Backend: counter, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, inflight := runGWWorkload(l); inflight != nil {
		t.Fatalf("counting pass hit a fault at %+v", inflight)
	}
	l.Close()
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("workload only performed %d backend mutations; too small to sweep", total)
	}

	for k := int64(0); k <= total; k++ {
		inner := storage.NewMemBackend()
		fb := storage.NewFaultBackend(inner)
		fb.SetBudget(k)
		fb.SetTear(k%2 == 1)

		l, err := Open(Config{Backend: fb, Shards: 2})
		if err != nil {
			// Crash during Open (meta write): the inner backend must still
			// open cleanly, with nothing tracked.
			l2, err2 := Open(Config{Backend: inner, Shards: 2})
			if err2 != nil {
				t.Fatalf("k=%d: reopen after failed open: %v", k, err2)
			}
			if names := l2.SeriesNames(); len(names) != 0 {
				t.Fatalf("k=%d: failed open left series %v", k, names)
			}
			l2.Close()
			continue
		}
		acked, inflight := runGWWorkload(l)
		// Crash: abandon l without Close.

		l2, err := Open(Config{Backend: inner, Shards: 2})
		if err != nil {
			t.Fatalf("k=%d (inflight %+v): reopen failed: %v", k, inflight, err)
		}
		states := legalStates(acked, inflight)
		for _, name := range []string{"a", "b", "c"} {
			got, _, err := l2.SeriesLog(name).Replay()
			if err != nil {
				t.Fatalf("k=%d: replay %s: %v", k, name, err)
			}
			matched := false
			for _, st := range states {
				want := st[name]
				if len(got) == 0 && len(want) == 0 {
					matched = true
					break
				}
				if reflect.DeepEqual(got, want) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("k=%d: series %s replayed %v; acked %v, inflight %+v",
					k, name, got, acked[name], inflight)
			}
			// Cross-series isolation: values encode their series (a=1xx,
			// b=2xx, c=3xx) — a replayed point must carry its own tag.
			base := map[string]float64{"a": 100, "b": 200, "c": 300}[name]
			for _, p := range got {
				if p.V < base || p.V >= base+100 {
					t.Fatalf("k=%d: series %s replayed foreign point %v", k, name, p)
				}
			}
		}
		l2.Close()
	}
}
