package groupwal

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/series"
	"repro/internal/storage"
)

func pt(tg int64, v float64) series.Point { return series.Point{TG: tg, TA: tg, V: v} }

func mustReplay(t *testing.T, l *Log, name string) []series.Point {
	t.Helper()
	pts, _, err := l.SeriesLog(name).Replay()
	if err != nil {
		t.Fatalf("replay %s: %v", name, err)
	}
	return pts
}

// TestRoundtrip: points appended through several series handles come back,
// per series, in order, after a restart.
func TestRoundtrip(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]series.Point{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("s%d", i%3)
		p := pt(int64(i), float64(100*i))
		if err := l.SeriesLog(name).Append(p); err != nil {
			t.Fatalf("append: %v", err)
		}
		want[name] = append(want[name], p)
	}
	if err := l.SeriesLog("batch").AppendBatch([]series.Point{pt(1, 1), pt(2, 2)}); err != nil {
		t.Fatalf("append batch: %v", err)
	}
	want["batch"] = []series.Point{pt(1, 1), pt(2, 2)}
	l.Close()

	l2, err := Open(Config{Backend: b, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for name, pts := range want {
		if got := mustReplay(t, l2, name); !reflect.DeepEqual(got, pts) {
			t.Fatalf("%s: replay %v, want %v", name, got, pts)
		}
	}
	if names := l2.SeriesNames(); len(names) != 4 {
		t.Fatalf("SeriesNames = %v, want 4 names", names)
	}
}

// TestCheckpointSupersedes: Rewrite leaves exactly the given points pending,
// in-process and across a restart, without touching other series.
func TestCheckpointSupersedes(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b, Shards: 1}) // one shard: both series share it
	if err != nil {
		t.Fatal(err)
	}
	a, o := l.SeriesLog("a"), l.SeriesLog("other")
	for i := 0; i < 6; i++ {
		if err := a.Append(pt(int64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Append(pt(7, 7)); err != nil {
		t.Fatal(err)
	}
	rest := []series.Point{pt(4, 4), pt(5, 5)}
	if err := a.Rewrite(rest); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	// In-process, Replay serves recovery state: live appends are not in the
	// pending set, and the checkpoint trimmed everything before it.
	if got := mustReplay(t, l, "a"); len(got) != 0 {
		t.Fatalf("in-process replay returned live appends: %v", got)
	}
	l.Close()

	l2, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := mustReplay(t, l2, "a"); !reflect.DeepEqual(got, rest) {
		t.Fatalf("restart replay after checkpoint = %v, want %v", got, rest)
	}
	if got := mustReplay(t, l2, "other"); !reflect.DeepEqual(got, []series.Point{pt(7, 7)}) {
		t.Fatalf("checkpoint of a disturbed other: %v", got)
	}
	// An empty checkpoint empties the pending set durably.
	if err := l2.SeriesLog("a").Rewrite(nil); err != nil {
		t.Fatal(err)
	}
	if got := mustReplay(t, l2, "a"); len(got) != 0 {
		t.Fatalf("replay after empty checkpoint = %v, want none", got)
	}
}

// TestForget removes a series' cursor and pending durably.
func TestForget(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SeriesLog("gone").Append(pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.SeriesLog("kept").Append(pt(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Forget("gone"); err != nil {
		t.Fatalf("forget: %v", err)
	}
	l.Close()
	l2, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.SeriesNames(); !reflect.DeepEqual(got, []string{"kept"}) {
		t.Fatalf("SeriesNames after forget = %v, want [kept]", got)
	}
	if got := mustReplay(t, l2, "gone"); len(got) != 0 {
		t.Fatalf("forgotten series replayed %v", got)
	}
}

// TestRotationAndGC: with a tiny segment threshold, checkpoints let sealed
// segments be collected, so the live segment count stays bounded while
// records keep flowing.
func TestRotationAndGC(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b, Shards: 1, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	sl := l.SeriesLog("hot")
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			if err := sl.Append(pt(int64(round*5+i), float64(round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := sl.Rewrite(nil); err != nil { // all flushed, nothing volatile
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.SegmentsRemoved == 0 {
		t.Fatalf("no segments collected despite %d commits over %d-byte segments", st.Commits, 128)
	}
	if st.Segments > 4 {
		t.Fatalf("live segments grew to %d; GC is not keeping up", st.Segments)
	}
	l.Close()
	l2, err := Open(Config{Backend: b, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := mustReplay(t, l2, "hot"); len(got) != 0 {
		t.Fatalf("fully checkpointed series replayed %v", got)
	}
}

// TestMetaPinsShards: the persisted shard count wins over the configured one
// on reopen — the series→shard hash must stay stable.
func TestMetaPinsShards(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SeriesLog("x").Append(pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(Config{Backend: b, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Stats().Shards; got != 3 {
		t.Fatalf("reopen used %d shards, want persisted 3", got)
	}
	if got := mustReplay(t, l2, "x"); len(got) != 1 {
		t.Fatalf("replay across shard-count change = %v", got)
	}
}

// TestMetaCorruptFailsOpen: a damaged meta object must fail loudly, never
// silently rehash series into the wrong shards.
func TestMetaCorruptFailsOpen(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := b.Read(metaName)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := b.Write(metaName, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Backend: b}); err == nil {
		t.Fatal("open succeeded on corrupt meta")
	}
}

// TestTornTail: a torn final record costs exactly the torn suffix — every
// record before it replays, and the tear is counted.
func TestTornTail(t *testing.T) {
	b := storage.NewMemBackend()
	l, err := Open(Config{Backend: b, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sl := l.SeriesLog("t")
	for i := 0; i < 4; i++ {
		if err := sl.Append(pt(int64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Find the one data segment and chop into its final record.
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, n := range names {
		if _, _, ok := parseSegmentName(n); ok {
			data, err := b.Read(n)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) > 0 {
				seg = n
			}
		}
	}
	if seg == "" {
		t.Fatal("no non-empty segment found")
	}
	data, err := b.Read(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(seg, data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := mustReplay(t, l2, "t")
	if len(got) != 3 {
		t.Fatalf("torn tail replayed %d points, want the 3 intact ones (%v)", len(got), got)
	}
	for i, p := range got {
		if p.TG != int64(i) {
			t.Fatalf("point %d = %v, out of order after tear", i, p)
		}
	}
	if l2.Stats().TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", l2.Stats().TornTails)
	}
}

// TestSegmentNameCollision: a user series named like a segment must not be
// parsed as one (its objects carry a "." separator; the strict parse refuses
// anything but 16 hex digits).
func TestSegmentNameParse(t *testing.T) {
	for _, bad := range []string{"GWAL-META", "GWAL-0-abc", "GWAL-0-0123456789abcdef.WAL", "GWAL--0000000000000000", "CATALOG"} {
		if _, _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName accepted %q", bad)
		}
	}
	sh, seq, ok := parseSegmentName(segmentName(7, 0x1b))
	if !ok || sh != 7 || seq != 0x1b {
		t.Fatalf("roundtrip failed: %d %d %v", sh, seq, ok)
	}
}
