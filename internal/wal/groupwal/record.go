package groupwal

import (
	"hash/crc32"

	"repro/internal/encoding"
	"repro/internal/series"
)

// Record framing matches the per-series WAL (length | payload | crc32 of
// the payload) so torn-tail detection behaves identically, but the payload
// is multi-series:
//
//	kind u8 | seq uvarint | nameLen uvarint | name | body
//
// kind 1 (data):    npoints uvarint, then npoints × (TG varint, TA varint,
//
//	V float64) — one acknowledged append from one series.
//
// kind 2 (cursor):  cursor uvarint — on replay, data records of this series
//
//	with seq < cursor are skipped (their points became
//	durable in SSTables when the checkpoint was written).
//
// kind 3 (forget):  empty body — the series was dropped; its cursor and
//
//	pending data stop existing and stop pinning segments.
const (
	kindData   = 1
	kindCursor = 2
	kindForget = 3
)

// maxPayload bounds one record's payload. Checked on the uvarint value
// before conversion to int so a garbage 64-bit length cannot overflow int
// on 32-bit platforms. Larger appends are chunked by the writer.
const maxPayload = 8 << 20

// chunkPoints caps the points encoded into one data record; appends larger
// than this become several records inside the same committed batch.
const chunkPoints = 8192

// maxSeriesName bounds the series-name field; tsdb names are ≤128 bytes.
const maxSeriesName = 1 << 10

// appendFrame wraps one payload with the length prefix and CRC.
func appendFrame(dst, payload []byte) []byte {
	dst = encoding.PutUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return encoding.PutUint32(dst, crc32.ChecksumIEEE(payload))
}

// appendDataRecord frames one data record carrying pts for the series.
func appendDataRecord(dst []byte, seq uint64, name string, pts []series.Point) []byte {
	payload := make([]byte, 0, 16+len(name)+len(pts)*20)
	payload = append(payload, kindData)
	payload = encoding.PutUvarint(payload, seq)
	payload = encoding.PutUvarint(payload, uint64(len(name)))
	payload = append(payload, name...)
	payload = encoding.PutUvarint(payload, uint64(len(pts)))
	for _, p := range pts {
		payload = encoding.PutVarint(payload, p.TG)
		payload = encoding.PutVarint(payload, p.TA)
		payload = encoding.PutFloat64(payload, p.V)
	}
	return appendFrame(dst, payload)
}

// appendCursorRecord frames one replay-cursor record.
func appendCursorRecord(dst []byte, seq uint64, name string, cursor uint64) []byte {
	payload := make([]byte, 0, 24+len(name))
	payload = append(payload, kindCursor)
	payload = encoding.PutUvarint(payload, seq)
	payload = encoding.PutUvarint(payload, uint64(len(name)))
	payload = append(payload, name...)
	payload = encoding.PutUvarint(payload, cursor)
	return appendFrame(dst, payload)
}

// appendForgetRecord frames one forget record.
func appendForgetRecord(dst []byte, seq uint64, name string) []byte {
	payload := make([]byte, 0, 16+len(name))
	payload = append(payload, kindForget)
	payload = encoding.PutUvarint(payload, seq)
	payload = encoding.PutUvarint(payload, uint64(len(name)))
	payload = append(payload, name...)
	return appendFrame(dst, payload)
}

// record is one decoded log record.
type record struct {
	kind   byte
	seq    uint64
	name   string
	pts    []series.Point // kindData
	cursor uint64         // kindCursor
}

// decodeRecord parses one framed record at the start of data, returning the
// record and the bytes consumed. ok is false at a torn or corrupt record —
// the expected state of a tail written during a crash.
func decodeRecord(data []byte) (rec record, n int, ok bool) {
	plen, hn, err := encoding.Uvarint(data)
	if err != nil || plen > maxPayload {
		return rec, 0, false
	}
	start := hn
	end := start + int(plen)
	if end+4 > len(data) {
		return rec, 0, false
	}
	payload := data[start:end]
	wantCRC, _, err := encoding.Uint32(data[end:])
	if err != nil || crc32.ChecksumIEEE(payload) != wantCRC {
		return rec, 0, false
	}
	if !decodePayload(payload, &rec) {
		return rec, 0, false
	}
	return rec, end + 4, true
}

// decodePayload parses a record body. CRC already validated, so a failure
// here means a writer bug or intra-record corruption; both stop replay.
func decodePayload(payload []byte, rec *record) bool {
	if len(payload) < 1 {
		return false
	}
	rec.kind = payload[0]
	payload = payload[1:]
	seq, n, err := encoding.Uvarint(payload)
	if err != nil {
		return false
	}
	rec.seq = seq
	payload = payload[n:]
	nameLen, n, err := encoding.Uvarint(payload)
	if err != nil || nameLen > maxSeriesName {
		return false
	}
	payload = payload[n:]
	if uint64(len(payload)) < nameLen {
		return false
	}
	rec.name = string(payload[:nameLen])
	payload = payload[nameLen:]
	switch rec.kind {
	case kindData:
		npts, n, err := encoding.Uvarint(payload)
		if err != nil || npts > chunkPoints {
			return false
		}
		payload = payload[n:]
		pts := make([]series.Point, 0, npts)
		for i := uint64(0); i < npts; i++ {
			var p series.Point
			tg, n, err := encoding.Varint(payload)
			if err != nil {
				return false
			}
			p.TG = tg
			payload = payload[n:]
			ta, n, err := encoding.Varint(payload)
			if err != nil {
				return false
			}
			p.TA = ta
			payload = payload[n:]
			v, n, err := encoding.Float64(payload)
			if err != nil {
				return false
			}
			p.V = v
			payload = payload[n:]
			pts = append(pts, p)
		}
		rec.pts = pts
		return len(payload) == 0
	case kindCursor:
		cur, n, err := encoding.Uvarint(payload)
		if err != nil {
			return false
		}
		rec.cursor = cur
		return len(payload[n:]) == 0
	case kindForget:
		return len(payload) == 0
	default:
		return false
	}
}
