package groupwal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/storage"
)

// The meta object pins the shard count: the series→shard hash must stay
// stable across restarts or replay cursors would filter the wrong stream.
//
// Layout: magic "GWALMET1" | crc32(payload) u32 | payload, where payload is
// JSON {"format":1,"shards":N}. Like the catalog, corruption fails Open
// loudly rather than silently rehashing series into the wrong shards.

const metaName = "GWAL-META"

var metaMagic = []byte("GWALMET1")

// ErrMetaCorrupt is returned when the meta object exists but fails its
// magic, CRC, or format checks.
var ErrMetaCorrupt = errors.New("groupwal: meta object corrupt")

type metaDoc struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

// loadOrInitMeta returns the persisted shard count, writing the meta object
// with want shards on first open.
func loadOrInitMeta(b storage.Backend, want int) (int, error) {
	data, err := b.Read(metaName)
	if errors.Is(err, storage.ErrNotFound) {
		doc := metaDoc{Format: 1, Shards: want}
		payload, err := json.Marshal(doc)
		if err != nil {
			return 0, fmt.Errorf("groupwal: marshal meta: %w", err)
		}
		buf := make([]byte, 0, len(metaMagic)+4+len(payload))
		buf = append(buf, metaMagic...)
		crc := crc32.ChecksumIEEE(payload)
		buf = append(buf, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
		buf = append(buf, payload...)
		if err := b.Write(metaName, buf); err != nil {
			return 0, fmt.Errorf("groupwal: write meta: %w", err)
		}
		return want, nil
	}
	if err != nil {
		return 0, fmt.Errorf("groupwal: read meta: %w", err)
	}
	if len(data) < len(metaMagic)+4 || !bytes.Equal(data[:len(metaMagic)], metaMagic) {
		return 0, fmt.Errorf("%w: bad magic", ErrMetaCorrupt)
	}
	rest := data[len(metaMagic):]
	wantCRC := uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24
	payload := rest[4:]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, fmt.Errorf("%w: CRC mismatch", ErrMetaCorrupt)
	}
	var doc metaDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrMetaCorrupt, err)
	}
	if doc.Format != 1 || doc.Shards < 1 || doc.Shards > maxShards {
		return 0, fmt.Errorf("%w: format %d, shards %d", ErrMetaCorrupt, doc.Format, doc.Shards)
	}
	return doc.Shards, nil
}

// replayAll rebuilds every shard's cursors, pending data, and segment
// bookkeeping from the backend, then positions each shard on a FRESH
// segment past everything seen — a crash may have torn the previous tail,
// and nothing is ever appended after a torn record. Fully superseded
// segments are removed before the committers start.
func (l *Log) replayAll() error {
	names, err := l.cfg.Backend.List()
	if err != nil {
		return fmt.Errorf("groupwal: list backend: %w", err)
	}
	segs := make(map[int][]uint64, len(l.shards))
	for _, name := range names {
		shard, seq, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		if shard >= len(l.shards) {
			return fmt.Errorf("groupwal: segment %s names shard %d of %d — meta/segment mismatch", name, shard, len(l.shards))
		}
		segs[shard] = append(segs[shard], seq)
	}
	for id, s := range l.shards {
		seqs := segs[id]
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, segSeq := range seqs {
			if err := s.replaySegment(segSeq); err != nil {
				return err
			}
			if segSeq >= s.segSeq {
				s.segSeq = segSeq + 1
			}
		}
		// Drop pending data already superseded by the final cursors, then
		// collect segments that no longer hold anything needed.
		for name, cur := range s.cursors {
			s.trimReplayLocked(name, cur)
		}
		for _, name := range s.collectLocked() {
			if err := l.cfg.Backend.Remove(name); err != nil {
				return fmt.Errorf("groupwal: remove superseded segment %s: %w", name, err)
			}
			l.segRemoved.Add(1)
		}
	}
	return nil
}

// replaySegment decodes one segment in record order. Decoding stops at the
// first torn or corrupt record; that is expected on a shard's final segment
// (a crash mid-commit) and tolerated — but counted — anywhere, since an
// earlier crash can leave a torn tail mid-chain (a restart always rotates
// to a new segment rather than appending after the tear).
func (s *shard) replaySegment(segSeq uint64) error {
	name := segmentName(s.id, segSeq)
	data, err := s.log.cfg.Backend.Read(name)
	if errors.Is(err, storage.ErrNotFound) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("groupwal: read segment %s: %w", name, err)
	}
	if s.segData[segSeq] == nil {
		s.segData[segSeq] = make(map[string]uint64)
	}
	off := 0
	for off < len(data) {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		off += n
		if rec.seq >= s.nextSeq {
			s.nextSeq = rec.seq + 1
		}
		switch rec.kind {
		case kindData:
			if _, ok := s.cursors[rec.name]; !ok {
				s.cursors[rec.name] = 0
			}
			s.replay[rec.name] = append(s.replay[rec.name], replayRec{seq: rec.seq, pts: rec.pts})
			s.segData[segSeq][rec.name] = rec.seq
		case kindCursor:
			s.cursors[rec.name] = rec.cursor
			s.trimReplayLocked(rec.name, rec.cursor)
			if old, ok := s.cursorSeg[rec.name]; ok {
				s.segCursors[old]--
				if s.segCursors[old] <= 0 {
					delete(s.segCursors, old)
				}
			}
			s.cursorSeg[rec.name] = segSeq
			s.segCursors[segSeq]++
		case kindForget:
			delete(s.cursors, rec.name)
			delete(s.replay, rec.name)
			if old, ok := s.cursorSeg[rec.name]; ok {
				s.segCursors[old]--
				if s.segCursors[old] <= 0 {
					delete(s.segCursors, old)
				}
				delete(s.cursorSeg, rec.name)
			}
		}
	}
	if off < len(data) {
		s.log.tornTails++
	}
	return nil
}
