// Package groupwal implements a sharded, group-committed write-ahead log
// shared by every series of a database. Per-series WALs cost one backend
// object and one fsync stream per series — fatal at large series counts.
// Here, series hash to one of N shards; concurrent appends to a shard
// coalesce into one buffered segment write (one fsync on a disk backend)
// per commit window, so the fsync rate is O(shards × commit windows), not
// O(series).
//
// Each shard owns a chain of append-only segment objects
// ("GWAL-<shard>-<seq>"). Records are CRC-framed and carry the series name
// plus a per-shard sequence number (see record.go). Replay state is
// per-series: a cursor record supersedes every data record of its series
// with a lower sequence number, which is how an engine flush truncates its
// slice of the shared log without rewriting anyone else's. A sealed segment
// whose records are all superseded is deleted.
//
// Crash safety mirrors the per-series WAL (DESIGN.md §7.2/§7.6): a torn
// tail loses only the unacknowledged suffix of the shard — appends are
// acknowledged strictly after their commit's backend append returns — and
// replay never crosses series: records name their series, and a series'
// cursor filters only records bearing its name. A restart always starts a
// fresh segment, so nothing is ever appended after a possibly-torn tail.
package groupwal

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrClosed is returned by operations on a closed log or series handle.
var ErrClosed = errors.New("groupwal: log is closed")

// DefaultShards is the shard count when Config.Shards is zero: enough to
// spread fsync latency across independent streams without multiplying the
// commit rate beyond what a small disk absorbs.
const DefaultShards = 4

// DefaultSegmentBytes rotates a shard's active segment once it exceeds
// 4 MiB, keeping both replay reads and garbage collection granular.
const DefaultSegmentBytes = 4 << 20

// maxShards bounds Config.Shards.
const maxShards = 256

// Config parameterizes Open.
type Config struct {
	// Backend stores the segment and meta objects. Required.
	Backend storage.Backend
	// Shards is the number of independent commit streams. Zero selects
	// DefaultShards. The value is persisted in a meta object on first open
	// and later opens use the persisted value (the series→shard hash must
	// be stable across restarts), so changing it affects only new logs.
	Shards int
	// CommitWindow is how long a shard's committer waits after the first
	// pending append before committing, letting concurrent appends pile
	// into the same fsync. Zero commits immediately — concurrent appends
	// still coalesce (everything enqueued while a commit is in flight
	// joins the next one), but an isolated append is never delayed.
	CommitWindow time.Duration
	// SegmentBytes is the rotation threshold for a shard's active segment.
	// Zero selects DefaultSegmentBytes.
	SegmentBytes int64
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Shards is the effective shard count.
	Shards int
	// Commits counts backend appends — on a disk backend, exactly the
	// number of fsyncs the log has issued.
	Commits int64
	// Records counts framed records written (data, cursor, and forget).
	Records int64
	// Points counts points appended through data records.
	Points int64
	// Checkpoints counts cursor records written.
	Checkpoints int64
	// Forgets counts forget records written.
	Forgets int64
	// SegmentsRemoved counts segments deleted by garbage collection.
	SegmentsRemoved int64
	// Segments is the number of live segment objects across shards.
	Segments int
	// PendingSeries is the number of series with un-replayed data.
	PendingSeries int
	// PendingPoints totals the points awaiting replay across series.
	PendingPoints int64
	// CursorSeries is the number of series the log tracks a cursor for.
	CursorSeries int
	// TornTails counts shards whose tail segment ended in a torn record at
	// Open — expected after a crash mid-commit, a red flag otherwise.
	TornTails int
}

// HistSnapshot is a copy of one histogram's state for rendering.
type HistSnapshot struct {
	Edges  []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Log is a sharded group-commit write-ahead log.
type Log struct {
	cfg    Config
	shards []*shard

	commits     atomic.Int64
	records     atomic.Int64
	points      atomic.Int64
	checkpoints atomic.Int64
	forgets     atomic.Int64
	segRemoved  atomic.Int64
	tornTails   int

	histMu    sync.Mutex
	batchHist *metrics.Histogram // points per commit
	latHist   *metrics.Histogram // commit latency, seconds

	closeOnce sync.Once
}

// replayRec is one un-replayed data record held for a series.
type replayRec struct {
	seq uint64
	pts []series.Point
}

// op is one enqueued append awaiting its group commit.
type op struct {
	buf        []byte
	name       string
	npoints    int
	maxDataSeq uint64
	hasData    bool
	cursorVal  uint64
	hasCursor  bool
	forget     bool
	errCh      chan error
}

// shard is one independent commit stream.
type shard struct {
	log *Log
	id  int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*op
	closed bool
	err    error // sticky: a failed commit fail-stops the shard

	nextSeq  uint64 // next record sequence number
	segSeq   uint64 // active segment number
	segBytes int64  // bytes committed into the active segment

	// cursors maps each series to the first sequence number replay would
	// deliver; a series appears here from its first data record (cursor 0)
	// until a forget record. replay holds the un-replayed data decoded at
	// Open, trimmed as checkpoints advance cursors.
	cursors map[string]uint64
	replay  map[string][]replayRec

	// segData tracks, per live segment, each series' highest data-record
	// sequence in it; segCursors counts series whose latest cursor record
	// lives in the segment. A sealed segment is garbage once no series
	// needs its data (all maxima below the cursors) and no series' current
	// cursor is recorded only there.
	segData    map[uint64]map[string]uint64
	segCursors map[uint64]int
	cursorSeg  map[string]uint64 // series → segment of its latest cursor

	done chan struct{}
}

// Open loads (or initializes) the log in cfg.Backend: the meta object fixes
// the shard count, every shard's segments are replayed into per-series
// pending state, fully superseded segments are collected, and one committer
// goroutine per shard is started. The returned log is ready for appends.
func Open(cfg Config) (*Log, error) {
	if cfg.Backend == nil {
		return nil, errors.New("groupwal: Config.Backend is required")
	}
	if cfg.Shards < 0 || cfg.Shards > maxShards {
		return nil, fmt.Errorf("groupwal: Shards must be in [0, %d], got %d", maxShards, cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	shards, err := loadOrInitMeta(cfg.Backend, cfg.Shards)
	if err != nil {
		return nil, err
	}
	cfg.Shards = shards
	l := &Log{
		cfg:       cfg,
		batchHist: metrics.NewHistogram(0, 2000, 200),
		latHist:   metrics.NewHistogram(0, 1, 200),
	}
	l.shards = make([]*shard, cfg.Shards)
	for i := range l.shards {
		s := &shard{
			log:        l,
			id:         i,
			cursors:    make(map[string]uint64),
			replay:     make(map[string][]replayRec),
			segData:    make(map[uint64]map[string]uint64),
			segCursors: make(map[uint64]int),
			cursorSeg:  make(map[string]uint64),
			done:       make(chan struct{}),
		}
		s.cond = sync.NewCond(&s.mu)
		l.shards[i] = s
	}
	if err := l.replayAll(); err != nil {
		return nil, err
	}
	for _, s := range l.shards {
		go s.run()
	}
	return l, nil
}

// shardFor hashes a series name to its shard (FNV-1a; stable across
// restarts, which the persisted shard count guarantees stays meaningful).
func (l *Log) shardFor(name string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return l.shards[h%uint64(len(l.shards))]
}

// segmentName returns the backend object name for one segment.
func segmentName(shard int, seq uint64) string {
	return fmt.Sprintf("GWAL-%d-%016x", shard, seq)
}

// parseSegmentName inverts segmentName, rejecting anything else (including
// user series whose names happen to start with "GWAL-": their objects carry
// a "." which the strict hex parse refuses).
func parseSegmentName(name string) (shard int, seq uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "GWAL-")
	if !found {
		return 0, 0, false
	}
	i := strings.IndexByte(rest, '-')
	if i <= 0 || len(rest)-i-1 != 16 {
		return 0, 0, false
	}
	shard, err := strconv.Atoi(rest[:i])
	if err != nil || shard < 0 {
		return 0, 0, false
	}
	seq, err = strconv.ParseUint(rest[i+1:], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return shard, seq, true
}

// SeriesLog returns the per-series handle engines use as their WAL. Handles
// are cheap; one is created per engine instantiation.
func (l *Log) SeriesLog(name string) *SeriesLog {
	return &SeriesLog{log: l, s: l.shardFor(name), name: name}
}

// SeriesNames returns every series the log tracks (a cursor or pending data
// exists), sorted. Used by catalog migration: with a shared log, a WAL-only
// series leaves no per-series object to discover.
func (l *Log) SeriesNames() []string {
	set := make(map[string]bool)
	for _, s := range l.shards {
		s.mu.Lock()
		for n := range s.cursors {
			set[n] = true
		}
		s.mu.Unlock()
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PendingSeries returns the series with un-replayed data, sorted.
func (l *Log) PendingSeries() []string {
	var out []string
	for _, s := range l.shards {
		s.mu.Lock()
		for n, recs := range s.replay {
			if len(recs) > 0 {
				out = append(out, n)
			}
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// PendingPoints returns the number of points awaiting replay for one series.
func (l *Log) PendingPoints(name string) int64 {
	s := l.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, r := range s.replay[name] {
		n += int64(len(r.pts))
	}
	return n
}

// Forget durably removes a dropped series from the log: its cursor and
// pending data stop existing and stop pinning segments. Idempotent.
func (l *Log) Forget(name string) error {
	s := l.shardFor(name)
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	o := &op{name: name, forget: true, errCh: make(chan error, 1)}
	seq := s.nextSeq
	s.nextSeq++
	o.buf = appendForgetRecord(nil, seq, name)
	s.queue = append(s.queue, o)
	s.cond.Signal()
	s.mu.Unlock()
	return <-o.errCh
}

// Stats returns a snapshot of the counters and per-shard state.
func (l *Log) Stats() Stats {
	st := Stats{
		Shards:          len(l.shards),
		Commits:         l.commits.Load(),
		Records:         l.records.Load(),
		Points:          l.points.Load(),
		Checkpoints:     l.checkpoints.Load(),
		Forgets:         l.forgets.Load(),
		SegmentsRemoved: l.segRemoved.Load(),
		TornTails:       l.tornTails,
	}
	seen := make(map[string]bool)
	for _, s := range l.shards {
		s.mu.Lock()
		st.Segments += len(s.segData)
		st.CursorSeries += len(s.cursors)
		for n, recs := range s.replay {
			if len(recs) == 0 {
				continue
			}
			if !seen[n] {
				seen[n] = true
				st.PendingSeries++
			}
			for _, r := range recs {
				st.PendingPoints += int64(len(r.pts))
			}
		}
		s.mu.Unlock()
	}
	return st
}

// BatchHist returns the points-per-commit histogram.
func (l *Log) BatchHist() HistSnapshot { return l.snapshotHist(l.batchHist) }

// CommitLatencyHist returns the commit-latency histogram (seconds).
func (l *Log) CommitLatencyHist() HistSnapshot { return l.snapshotHist(l.latHist) }

func (l *Log) snapshotHist(h *metrics.Histogram) HistSnapshot {
	l.histMu.Lock()
	defer l.histMu.Unlock()
	edges, counts := h.Bins()
	return HistSnapshot{
		Edges:  edges,
		Counts: counts,
		Count:  h.Count(),
		Sum:    h.Mean() * float64(h.Count()),
	}
}

func (l *Log) observeCommit(points int, d time.Duration) {
	l.histMu.Lock()
	l.batchHist.Observe(float64(points))
	l.latHist.Observe(d.Seconds())
	l.histMu.Unlock()
}

// Close drains every shard's queue, commits it, and stops the committers.
// Engines must be closed first — their final checkpoints go through the
// commit path. Appends after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		for _, s := range l.shards {
			s.mu.Lock()
			s.closed = true
			s.cond.Broadcast()
			s.mu.Unlock()
		}
		for _, s := range l.shards {
			<-s.done
		}
	})
	return nil
}

// usableLocked reports whether the shard accepts appends.
func (s *shard) usableLocked() error {
	if s.closed {
		return ErrClosed
	}
	return s.err
}

// enqueueData frames pts as data records (chunked if oversized), enqueues
// them as one op, and blocks until the group commit that contains them is
// durable. The caller is typically an engine holding its own lock, so
// appends within one series stay ordered; appends from other series pile
// into the same commit concurrently.
func (s *shard) enqueueData(name string, pts []series.Point) error {
	if len(pts) == 0 {
		return nil
	}
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	o := &op{name: name, npoints: len(pts), hasData: true, errCh: make(chan error, 1)}
	rest := pts
	for len(rest) > 0 {
		n := len(rest)
		if n > chunkPoints {
			n = chunkPoints
		}
		seq := s.nextSeq
		s.nextSeq++
		o.buf = appendDataRecord(o.buf, seq, name, rest[:n])
		o.maxDataSeq = seq
		rest = rest[n:]
	}
	s.queue = append(s.queue, o)
	s.cond.Signal()
	s.mu.Unlock()
	return <-o.errCh
}

// enqueueCheckpoint atomically (within one commit) re-appends the series'
// remaining volatile points and a cursor record superseding everything
// before them. Appending the data before the cursor is crash-safe in either
// half: replay is idempotent upserts, so a crash after the data but before
// the cursor merely replays points that are also durable elsewhere.
func (s *shard) enqueueCheckpoint(name string, pts []series.Point) error {
	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	o := &op{name: name, npoints: len(pts), hasCursor: true, errCh: make(chan error, 1)}
	o.cursorVal = s.nextSeq // first re-appended record, or the tail if none
	rest := pts
	for len(rest) > 0 {
		n := len(rest)
		if n > chunkPoints {
			n = chunkPoints
		}
		seq := s.nextSeq
		s.nextSeq++
		o.buf = appendDataRecord(o.buf, seq, name, rest[:n])
		o.maxDataSeq = seq
		o.hasData = true
		rest = rest[n:]
	}
	seq := s.nextSeq
	s.nextSeq++
	o.buf = appendCursorRecord(o.buf, seq, name, o.cursorVal)
	s.queue = append(s.queue, o)
	s.cond.Signal()
	s.mu.Unlock()
	return <-o.errCh
}

// run is the shard's committer: it swaps out the pending queue (after an
// optional commit window), concatenates the framed records, issues ONE
// backend append — the group commit; one fsync on a disk backend — then
// updates replay bookkeeping, rotates or collects segments, and wakes every
// waiter with the commit's outcome. A failed commit fail-stops the shard
// (sticky error): sequence numbers must never silently skip durability.
func (s *shard) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.mu.Unlock()
			return
		}
		if w := s.log.cfg.CommitWindow; w > 0 && !s.closed {
			s.mu.Unlock()
			time.Sleep(w)
			s.mu.Lock()
		}
		batch := s.queue
		s.queue = nil
		err := s.err
		seg := segmentName(s.id, s.segSeq)
		s.mu.Unlock()

		var buf []byte
		npts := 0
		for _, o := range batch {
			buf = append(buf, o.buf...)
			npts += o.npoints
		}
		if err == nil {
			start := time.Now()
			err = s.log.cfg.Backend.Append(seg, buf)
			if err == nil {
				s.log.commits.Add(1)
				s.log.observeCommit(npts, time.Since(start))
			}
		}

		var remove []string
		s.mu.Lock()
		if err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("groupwal: shard %d commit: %w", s.id, err)
			}
			err = s.err
		} else {
			s.segBytes += int64(len(buf))
			if s.segData[s.segSeq] == nil {
				s.segData[s.segSeq] = make(map[string]uint64)
			}
			for _, o := range batch {
				s.applyLocked(o)
			}
			if s.segBytes >= s.log.cfg.SegmentBytes {
				s.segSeq++
				s.segBytes = 0
			}
			remove = s.collectLocked()
		}
		s.mu.Unlock()

		for _, o := range batch {
			o.errCh <- err
		}
		for _, name := range remove {
			// Best-effort: a failed remove leaves a fully superseded
			// segment that a later pass (or the next Open) retries.
			if s.log.cfg.Backend.Remove(name) == nil {
				s.log.segRemoved.Add(1)
			}
		}
	}
}

// applyLocked folds one committed op into the shard's replay bookkeeping.
func (s *shard) applyLocked(o *op) {
	s.log.countOp(o)
	if o.hasData {
		if _, ok := s.cursors[o.name]; !ok {
			s.cursors[o.name] = 0
		}
		s.segData[s.segSeq][o.name] = o.maxDataSeq
	}
	if o.hasCursor {
		s.cursors[o.name] = o.cursorVal
		s.trimReplayLocked(o.name, o.cursorVal)
		if old, ok := s.cursorSeg[o.name]; ok {
			s.segCursors[old]--
			if s.segCursors[old] <= 0 {
				delete(s.segCursors, old)
			}
		}
		s.cursorSeg[o.name] = s.segSeq
		s.segCursors[s.segSeq]++
	}
	if o.forget {
		delete(s.cursors, o.name)
		delete(s.replay, o.name)
		if old, ok := s.cursorSeg[o.name]; ok {
			s.segCursors[old]--
			if s.segCursors[old] <= 0 {
				delete(s.segCursors, old)
			}
			delete(s.cursorSeg, o.name)
		}
	}
}

// countOp accounts one committed op's records and points.
func (l *Log) countOp(o *op) {
	n := int64(0)
	if o.hasData {
		n += (int64(o.npoints) + chunkPoints - 1) / chunkPoints
		l.points.Add(int64(o.npoints))
	}
	if o.hasCursor {
		n++
		l.checkpoints.Add(1)
	}
	if o.forget {
		n++
		l.forgets.Add(1)
	}
	l.records.Add(n)
}

// trimReplayLocked drops pending records superseded by a cursor.
func (s *shard) trimReplayLocked(name string, cursor uint64) {
	recs := s.replay[name]
	if len(recs) == 0 {
		return
	}
	kept := recs[:0]
	for _, r := range recs {
		if r.seq >= cursor {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(s.replay, name)
		return
	}
	s.replay[name] = kept
}

// collectLocked returns the sealed segments safe to delete: every data
// record superseded by its series' cursor (or its series forgotten) and no
// series' latest cursor record lives only there.
func (s *shard) collectLocked() []string {
	var out []string
	for segSeq, data := range s.segData {
		if segSeq == s.segSeq {
			continue // active
		}
		if s.segCursors[segSeq] > 0 {
			continue // holds someone's latest cursor record
		}
		needed := false
		for name, maxSeq := range data {
			cur, ok := s.cursors[name]
			if ok && maxSeq >= cur {
				needed = true
				break
			}
		}
		if needed {
			continue
		}
		delete(s.segData, segSeq)
		out = append(out, segmentName(s.id, segSeq))
	}
	return out
}

// SeriesLog is one series' view of the shared log. It satisfies the LSM
// engine's WAL interface: appends group-commit with other series, Rewrite
// becomes a checkpoint (re-append remaining + advance cursor), and Replay
// serves the pending records decoded at Open.
type SeriesLog struct {
	log    *Log
	s      *shard
	name   string
	closed atomic.Bool
}

// Append durably records one point (blocking until its group commit).
func (sl *SeriesLog) Append(p series.Point) error {
	return sl.AppendBatch([]series.Point{p})
}

// AppendBatch durably records points as one logical append.
func (sl *SeriesLog) AppendBatch(ps []series.Point) error {
	if sl.closed.Load() {
		return ErrClosed
	}
	return sl.s.enqueueData(sl.name, ps)
}

// Rewrite checkpoints the series: exactly ps remain volatile; everything
// logged before this call is superseded and stops pinning segments. This is
// the shared-log equivalent of the per-series WAL's atomic rewrite.
func (sl *SeriesLog) Rewrite(ps []series.Point) error {
	if sl.closed.Load() {
		return ErrClosed
	}
	return sl.s.enqueueCheckpoint(sl.name, ps)
}

// Replay returns the series' pending points in log order: the un-superseded
// records decoded at Open, trimmed as later checkpoints advance the cursor.
// Points appended live in this process are deliberately NOT mirrored into
// the pending set (that would duplicate every engine's memtable in the
// log's memory): an engine only calls Replay when it opens, at which point
// any live appends to its series were checkpointed away by the clean close
// of its previous incarnation — an eviction whose closing flush failed
// fail-stops the series precisely because this invariant would break.
func (sl *SeriesLog) Replay() ([]series.Point, wal.ReplayReport, error) {
	if sl.closed.Load() {
		return nil, wal.ReplayReport{}, ErrClosed
	}
	s := sl.s
	s.mu.Lock()
	recs := s.replay[sl.name]
	var pts []series.Point
	for _, r := range recs {
		pts = append(pts, r.pts...)
	}
	s.mu.Unlock()
	return pts, wal.ReplayReport{Points: len(pts)}, nil
}

// Close detaches the handle. The shared log keeps running — a handle close
// is an engine shutdown, not a log shutdown.
func (sl *SeriesLog) Close() { sl.closed.Store(true) }
